//! Minimal zero-dependency worker-pool utilities for the parallel
//! synthesis paths.
//!
//! The container this project builds in has no registry access, so the
//! usual suspects (`rayon`, `crossbeam`) are off the table; everything
//! here is `std::thread::scope` plus atomics. Two consumers:
//!
//! * the sharded explicit BFS in [`crate::reach`] (which rolls its own
//!   barrier/mailbox protocol and only shares [`effective_threads`]);
//! * the CSC candidate searches in `rt-synth` and `rt-core`, which use
//!   [`parallel_argmin`] to evaluate independent candidate insertions
//!   on a pool and reduce to a winner **deterministically**.
//!
//! ## Why the reduction is deterministic
//!
//! [`parallel_argmin`] hands each candidate an index in the caller's
//! (serial) enumeration order and reduces by `(cost, index)`: among
//! equal costs the lowest index wins, which is exactly the
//! "first strictly better candidate wins" rule the serial loops
//! implement with `cost < best`. Completion order, thread count and
//! work distribution therefore cannot change the winner — a resolution
//! computed at `--threads 8` is bit-identical to the serial one.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};

use crate::error::StgError;

/// What one pool worker hands back: its local `(index, cost, value)`
/// argmin (if any candidate qualified) plus its private scratch state.
type WorkerOutcome<W, T> = (Option<(usize, usize, T)>, W);

/// The pool's verdict: the deterministic `(index, cost, value)` winner
/// (if any candidate qualified) plus every worker's scratch state, or
/// the panic-isolation error.
type ArgminResult<W, T> = Result<(Option<(usize, usize, T)>, Vec<W>), StgError>;

/// Resolves a thread-count knob: `0` means "one worker per available
/// core", anything else is taken literally. Always at least 1.
pub fn effective_threads(threads: usize) -> usize {
    if threads == 0 {
        std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get)
    } else {
        threads
    }
    .max(1)
}

/// Evaluates `items` candidates on `threads` workers and returns the
/// minimum by `(cost, index)` — the deterministic argmin (see module
/// docs).
///
/// `make_worker` builds one private scratch state per worker (e.g. a
/// `ReachEngine` — persistent symbolic managers are not shareable, so
/// every worker owns its own). `eval(worker, index)` scores candidate
/// `index`, returning `None` to disqualify it. Work is distributed by
/// an atomic cursor, so expensive candidates do not stall cheap ones
/// behind a static partition.
///
/// Returns `(index, cost, value)` of the winner, `None` when every
/// candidate was disqualified, plus the worker states (so callers can
/// fold per-worker statistics back into their own accounting).
///
/// # Panic isolation
///
/// Every `eval` call runs under `catch_unwind`: a panicking evaluation
/// yields [`StgError::WorkerPanicked`] instead of unwinding through the
/// pool. The panicking worker stops pulling work, the *other* workers
/// drain the remaining candidates normally, and every worker state is
/// dropped cleanly — so a shared engine the caller rebuilds workers
/// from stays fully reusable. (The serial path gets the same contract,
/// so the error surface does not depend on the thread count.)
///
/// # Errors
///
/// [`StgError::WorkerPanicked`] — at least one `eval` call panicked.
pub fn parallel_argmin<W, T, FMake, FEval>(
    items: usize,
    threads: usize,
    make_worker: FMake,
    eval: FEval,
) -> ArgminResult<W, T>
where
    W: Send,
    T: Send,
    FMake: Fn() -> W + Sync,
    FEval: Fn(&mut W, usize) -> Option<(usize, T)> + Sync,
{
    let threads = effective_threads(threads).min(items.max(1));
    let panicked = AtomicBool::new(false);
    // One guarded evaluation: a panic inside `eval` marks the shared
    // flag and disqualifies the candidate. The worker state may be
    // mid-update afterwards, so the caller never sees its results —
    // the whole call errors out below.
    let guarded_eval = |worker: &mut W, index: usize| -> Option<(usize, T)> {
        match catch_unwind(AssertUnwindSafe(|| eval(worker, index))) {
            Ok(result) => result,
            Err(_) => {
                panicked.store(true, Ordering::SeqCst);
                None
            }
        }
    };
    if threads <= 1 {
        let mut worker = make_worker();
        let mut best: Option<(usize, usize, T)> = None;
        for index in 0..items {
            if panicked.load(Ordering::SeqCst) {
                break;
            }
            if let Some((cost, value)) = guarded_eval(&mut worker, index) {
                if best.as_ref().is_none_or(|&(_, c, _)| cost < c) {
                    best = Some((index, cost, value));
                }
            }
        }
        if panicked.load(Ordering::SeqCst) {
            return Err(StgError::WorkerPanicked);
        }
        return Ok((best, vec![worker]));
    }

    let cursor = AtomicUsize::new(0);
    let mut results: Vec<WorkerOutcome<W, T>> = std::thread::scope(|scope| {
        let guarded_eval = &guarded_eval;
        let make_worker = &make_worker;
        let handles: Vec<_> = (0..threads)
            .map(|_| {
                scope.spawn(|| {
                    let mut worker = make_worker();
                    let mut best: Option<(usize, usize, T)> = None;
                    let mut poisoned = false;
                    loop {
                        let index = cursor.fetch_add(1, Ordering::Relaxed);
                        if index >= items || poisoned {
                            break;
                        }
                        let before = panicked.load(Ordering::SeqCst);
                        if let Some((cost, value)) = guarded_eval(&mut worker, index) {
                            // Tie-break on index inside the worker too:
                            // the cursor hands indices in ascending
                            // order per worker, so `<` suffices here,
                            // but the cross-worker merge below needs
                            // the explicit index comparison.
                            if best.as_ref().is_none_or(|&(_, c, _)| cost < c) {
                                best = Some((index, cost, value));
                            }
                        } else if !before && panicked.load(Ordering::SeqCst) {
                            // This worker's own eval may just have
                            // panicked, leaving its state mid-update;
                            // stop pulling work on it. Siblings keep
                            // draining the cursor (the result is
                            // discarded either way, but draining keeps
                            // shutdown orderly and bounded).
                            poisoned = true;
                        }
                    }
                    (best, worker)
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("argmin worker panicked outside eval"))
            .collect()
    });

    if panicked.load(Ordering::SeqCst) {
        return Err(StgError::WorkerPanicked);
    }
    let mut best: Option<(usize, usize, T)> = None;
    let mut workers = Vec::with_capacity(results.len());
    for (local, worker) in results.drain(..) {
        if let Some((index, cost, value)) = local {
            if best
                .as_ref()
                .is_none_or(|&(bi, bc, _)| (cost, index) < (bc, bi))
            {
                best = Some((index, cost, value));
            }
        }
        workers.push(worker);
    }
    Ok((best, workers))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn effective_threads_resolves_zero_to_at_least_one() {
        assert!(effective_threads(0) >= 1);
        assert_eq!(effective_threads(1), 1);
        assert_eq!(effective_threads(7), 7);
    }

    #[test]
    fn argmin_matches_serial_scan_at_any_thread_count() {
        // Costs with duplicates: the tie must break toward the lowest
        // index at every thread count.
        let costs = [5usize, 3, 9, 3, 7, 3, 8, 10, 4, 3];
        for threads in [1usize, 2, 3, 8, 16] {
            let (best, _) = parallel_argmin(
                costs.len(),
                threads,
                || (),
                |(), i| Some((costs[i], i * 10)),
            )
            .expect("no panics");
            let (index, cost, value) = best.expect("non-empty");
            assert_eq!((index, cost, value), (1, 3, 10), "threads={threads}");
        }
    }

    #[test]
    fn disqualified_candidates_are_skipped() {
        let (best, _) = parallel_argmin(6, 4, || (), |(), i| (i % 2 == 1).then_some((100 - i, i)))
            .expect("no panics");
        assert_eq!(best, Some((5, 95, 5)));
        let (none, _) =
            parallel_argmin(4, 2, || (), |(), _| None::<(usize, ())>).expect("no panics");
        assert!(none.is_none());
        let (empty, workers) =
            parallel_argmin(0, 3, || (), |(), _| Some((0, ()))).expect("no panics");
        assert!(empty.is_none());
        assert_eq!(workers.len(), 1, "no items -> single worker, no spawns");
    }

    #[test]
    fn per_worker_state_is_private_and_returned() {
        let (_, workers) = parallel_argmin(
            100,
            4,
            || 0usize,
            |count, i| {
                *count += 1;
                Some((i, ()))
            },
        )
        .expect("no panics");
        let evaluated: usize = workers.iter().sum();
        assert_eq!(evaluated, 100, "every candidate evaluated exactly once");
    }

    #[test]
    fn panicking_eval_reports_worker_panicked_at_any_thread_count() {
        for threads in [1usize, 2, 3, 8] {
            let result = parallel_argmin(
                16,
                threads,
                || (),
                |(), i| {
                    if i == 5 {
                        panic!("injected eval panic");
                    }
                    Some((i, i))
                },
            );
            assert_eq!(
                result.map(|(best, _)| best),
                Err(StgError::WorkerPanicked),
                "threads={threads}"
            );
        }
    }

    #[test]
    fn sibling_workers_drain_cleanly_after_a_panic() {
        use std::sync::atomic::AtomicUsize;
        // Candidate 0 panics; every other candidate must still be
        // evaluated at most once and the pool must not hang or abort.
        let evaluated = AtomicUsize::new(0);
        let result = parallel_argmin(
            64,
            4,
            || (),
            |(), i| {
                if i == 0 {
                    panic!("injected eval panic");
                }
                evaluated.fetch_add(1, Ordering::SeqCst);
                Some((i, ()))
            },
        );
        assert_eq!(result.map(|(best, _)| best), Err(StgError::WorkerPanicked));
        assert!(
            evaluated.load(Ordering::SeqCst) <= 63,
            "no candidate evaluated twice"
        );
    }
}
