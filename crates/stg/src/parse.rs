//! Reader and writer for the `.g` (astg) STG interchange format used by
//! `petrify`, SIS and Workcraft.
//!
//! Supported sections: `.model`, `.inputs`, `.outputs`, `.internal`,
//! `.dummy`, `.graph`, `.marking`, `.end`, plus `#` comments. Within
//! `.graph`, each line is `source target target...` where nodes are signal
//! transitions (`a+`, `b-/2`), dummy names, or explicit place names.
//! Implicit places between two transitions are written `<t1,t2>` in
//! `.marking`.
//!
//! # Examples
//!
//! ```
//! use rt_stg::parse::{parse_g, write_g};
//!
//! let text = "\
//! .model tiny
//! .inputs a
//! .outputs b
//! .graph
//! a+ b+
//! b+ a-
//! a- b-
//! b- a+
//! .marking { <b-,a+> }
//! .end
//! ";
//! let stg = parse_g(text)?;
//! let round = write_g(&stg);
//! let again = parse_g(&round)?;
//! assert_eq!(again.signal_count(), 2);
//! # Ok::<(), rt_stg::StgError>(())
//! ```

use std::collections::HashMap;

use crate::error::StgError;
use crate::petri::TransitionId;
use crate::signal::SignalKind;
use crate::stg::{split_event_name, Stg, TransitionLabel};

/// Parses the `.g` textual format into an [`Stg`].
///
/// # Errors
///
/// Returns [`StgError::Parse`] with a line number for syntax problems, and
/// [`StgError::DuplicateSignal`] / [`StgError::UnknownSignal`] for semantic
/// ones.
pub fn parse_g(text: &str) -> Result<Stg, StgError> {
    Parser::new(text).run()
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum NodeRef {
    Transition(TransitionId),
    Place(crate::petri::PlaceId),
}

struct Parser<'a> {
    text: &'a str,
    stg: Stg,
    /// Node name -> reference; transitions registered by full name
    /// (`a+`, `a+/1`, dummy names), places by name.
    nodes: HashMap<String, NodeRef>,
    dummy_names: Vec<String>,
}

impl<'a> Parser<'a> {
    fn new(text: &'a str) -> Self {
        Parser {
            text,
            stg: Stg::new("model"),
            nodes: HashMap::new(),
            dummy_names: Vec::new(),
        }
    }

    fn run(mut self) -> Result<Stg, StgError> {
        enum Section {
            Header,
            Graph,
            Done,
        }
        let mut section = Section::Header;
        let lines: Vec<(usize, String)> = self
            .text
            .lines()
            .enumerate()
            .map(|(i, l)| {
                let no_comment = match l.find('#') {
                    Some(pos) => &l[..pos],
                    None => l,
                };
                (i + 1, no_comment.trim().to_string())
            })
            .filter(|(_, l)| !l.is_empty())
            .collect();

        let mut marking_lines: Vec<(usize, String)> = Vec::new();
        for (line_no, line) in &lines {
            let line_no = *line_no;
            if let Some(rest) = line.strip_prefix('.') {
                let mut parts = rest.split_whitespace();
                let directive = parts.next().unwrap_or("");
                let args: Vec<&str> = parts.collect();
                match directive {
                    "model" | "name" => {
                        if let Some(name) = args.first() {
                            self.stg.set_name(*name);
                        }
                    }
                    "inputs" => self.declare(&args, SignalKind::Input, line_no)?,
                    "outputs" => self.declare(&args, SignalKind::Output, line_no)?,
                    "internal" => self.declare(&args, SignalKind::Internal, line_no)?,
                    "dummy" => {
                        for name in args {
                            self.dummy_names.push(name.to_string());
                        }
                    }
                    "graph" => section = Section::Graph,
                    "marking" => {
                        let joined = args.join(" ");
                        marking_lines.push((line_no, joined));
                    }
                    "end" => section = Section::Done,
                    "capacity" | "slowenv" => { /* tolerated, ignored */ }
                    other => {
                        return Err(StgError::Parse {
                            line: line_no,
                            message: format!("unknown directive `.{other}`"),
                        })
                    }
                }
                continue;
            }
            match section {
                Section::Graph => self.graph_line(line, line_no)?,
                Section::Header => {
                    return Err(StgError::Parse {
                        line: line_no,
                        message: "arc line before .graph".to_string(),
                    })
                }
                Section::Done => {
                    return Err(StgError::Parse {
                        line: line_no,
                        message: "content after .end".to_string(),
                    })
                }
            }
        }
        for (line_no, text) in marking_lines {
            self.marking_line(&text, line_no)?;
        }
        Ok(self.stg)
    }

    fn declare(&mut self, names: &[&str], kind: SignalKind, _line: usize) -> Result<(), StgError> {
        for name in names {
            self.stg.add_signal(*name, kind)?;
        }
        Ok(())
    }

    /// Resolves a node name, creating transitions/places on first sight.
    fn node(&mut self, token: &str, line: usize) -> Result<NodeRef, StgError> {
        if let Some(&existing) = self.nodes.get(token) {
            return Ok(existing);
        }
        // Signal transition?
        if let Some((base, _)) = split_event_name(token) {
            if self.stg.signal_by_name(base).is_some() {
                let event = self.stg.parse_event(token)?;
                let id = self.stg.transition(event);
                self.nodes
                    .insert(token.to_string(), NodeRef::Transition(id));
                return Ok(NodeRef::Transition(id));
            }
            return Err(StgError::Parse {
                line,
                message: format!("transition `{token}` references undeclared signal `{base}`"),
            });
        }
        // Dummy transition?
        if self.dummy_names.iter().any(|d| d == token) {
            let id = self.stg.silent(token);
            self.nodes
                .insert(token.to_string(), NodeRef::Transition(id));
            return Ok(NodeRef::Transition(id));
        }
        // Otherwise: an explicit place.
        let id = self.stg.add_place(token);
        self.nodes.insert(token.to_string(), NodeRef::Place(id));
        Ok(NodeRef::Place(id))
    }

    fn graph_line(&mut self, line: &str, line_no: usize) -> Result<(), StgError> {
        let tokens: Vec<&str> = line.split_whitespace().collect();
        if tokens.len() < 2 {
            return Err(StgError::Parse {
                line: line_no,
                message: "arc line needs a source and at least one target".to_string(),
            });
        }
        let source = self.node(tokens[0], line_no)?;
        for target_token in &tokens[1..] {
            let target = self.node(target_token, line_no)?;
            match (source, target) {
                (NodeRef::Transition(from), NodeRef::Transition(to)) => {
                    let place = self.stg.arc(from, to);
                    // Register the implicit place for `.marking` lookup.
                    let from_name = self.stg.net().transition_name(from).to_string();
                    let to_name = self.stg.net().transition_name(to).to_string();
                    self.nodes
                        .insert(format!("<{from_name},{to_name}>"), NodeRef::Place(place));
                }
                (NodeRef::Transition(from), NodeRef::Place(place)) => {
                    self.stg.arc_to_place(from, place);
                }
                (NodeRef::Place(place), NodeRef::Transition(to)) => {
                    self.stg.arc_from_place(place, to);
                }
                (NodeRef::Place(_), NodeRef::Place(_)) => {
                    return Err(StgError::Parse {
                        line: line_no,
                        message: "place-to-place arcs are not allowed".to_string(),
                    })
                }
            }
        }
        Ok(())
    }

    fn marking_line(&mut self, text: &str, line_no: usize) -> Result<(), StgError> {
        let inner = text
            .trim()
            .trim_start_matches('{')
            .trim_end_matches('}')
            .trim();
        if inner.is_empty() {
            return Ok(());
        }
        // Tokens are place names or `<t1,t2>` pairs; split on whitespace
        // outside angle brackets.
        let mut tokens = Vec::new();
        let mut depth = 0usize;
        let mut current = String::new();
        for ch in inner.chars() {
            match ch {
                '<' => {
                    depth += 1;
                    current.push(ch);
                }
                '>' => {
                    depth = depth.saturating_sub(1);
                    current.push(ch);
                }
                c if c.is_whitespace() && depth == 0 => {
                    if !current.is_empty() {
                        tokens.push(std::mem::take(&mut current));
                    }
                }
                c => current.push(c),
            }
        }
        if !current.is_empty() {
            tokens.push(current);
        }
        for token in tokens {
            // Optional token count suffix `=k`.
            let (name, count) = match token.split_once('=') {
                Some((n, k)) => (
                    n.to_string(),
                    k.parse::<u16>().map_err(|_| StgError::Parse {
                        line: line_no,
                        message: format!("bad token count in `{token}`"),
                    })?,
                ),
                None => (token.clone(), 1),
            };
            match self.nodes.get(&name) {
                Some(NodeRef::Place(place)) => self.stg.set_tokens(*place, count),
                Some(NodeRef::Transition(_)) => {
                    return Err(StgError::Parse {
                        line: line_no,
                        message: format!("`{name}` is a transition, not a place"),
                    })
                }
                None => {
                    return Err(StgError::Parse {
                        line: line_no,
                        message: format!("unknown place `{name}` in marking"),
                    })
                }
            }
        }
        Ok(())
    }
}

/// Serializes an [`Stg`] to the `.g` format.
///
/// Implicit places (exactly one producer and one consumer, auto-generated
/// `<a,b>` name) are written as direct transition-to-transition arcs;
/// everything else uses explicit place names.
pub fn write_g(stg: &Stg) -> String {
    let net = stg.net();
    let mut out = String::new();
    out.push_str(&format!(".model {}\n", sanitize(stg.name())));
    for (directive, kind) in [
        (".inputs", SignalKind::Input),
        (".outputs", SignalKind::Output),
        (".internal", SignalKind::Internal),
    ] {
        let names: Vec<&str> = stg
            .signals()
            .filter(|&s| stg.signal_kind(s) == kind)
            .map(|s| stg.signal_name(s))
            .collect();
        if !names.is_empty() {
            out.push_str(&format!("{directive} {}\n", names.join(" ")));
        }
    }
    let dummies: Vec<String> = net
        .transitions()
        .filter(|&t| stg.label(t) == TransitionLabel::Silent)
        .map(|t| net.transition_name(t).to_string())
        .collect();
    if !dummies.is_empty() {
        out.push_str(&format!(".dummy {}\n", dummies.join(" ")));
    }
    out.push_str(".graph\n");

    let is_implicit = |p: crate::petri::PlaceId| {
        net.producers(p).len() == 1
            && net.consumers(p).len() == 1
            && net.place_name(p).starts_with('<')
    };

    for place in net.places() {
        if is_implicit(place) {
            let from = net.producers(place)[0];
            let to = net.consumers(place)[0];
            out.push_str(&format!(
                "{} {}\n",
                net.transition_name(from),
                net.transition_name(to)
            ));
        } else {
            for &from in net.producers(place) {
                out.push_str(&format!(
                    "{} {}\n",
                    net.transition_name(from),
                    net.place_name(place)
                ));
            }
            for &to in net.consumers(place) {
                out.push_str(&format!(
                    "{} {}\n",
                    net.place_name(place),
                    net.transition_name(to)
                ));
            }
        }
    }

    let marking = stg.initial_marking();
    let mut entries = Vec::new();
    for (place, tokens) in marking.marked_places() {
        let name = if is_implicit(place) {
            let from = net.producers(place)[0];
            let to = net.consumers(place)[0];
            format!(
                "<{},{}>",
                net.transition_name(from),
                net.transition_name(to)
            )
        } else {
            net.place_name(place).to_string()
        };
        if tokens == 1 {
            entries.push(name);
        } else {
            entries.push(format!("{name}={tokens}"));
        }
    }
    out.push_str(&format!(".marking {{ {} }}\n", entries.join(" ")));
    out.push_str(".end\n");
    out
}

fn sanitize(name: &str) -> String {
    let cleaned: String = name
        .chars()
        .map(|c| {
            if c.is_alphanumeric() || c == '_' {
                c
            } else {
                '_'
            }
        })
        .collect();
    if cleaned.is_empty() {
        "model".to_string()
    } else {
        cleaned
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::models;
    use crate::reach::explore;

    #[test]
    fn parse_minimal_handshake() {
        let text = "\
.model hs
.inputs a
.outputs b
.graph
a+ b+
b+ a-
a- b-
b- a+
.marking { <b-,a+> }
.end
";
        let stg = parse_g(text).unwrap();
        assert_eq!(stg.signal_count(), 2);
        let sg = explore(&stg).unwrap();
        assert_eq!(sg.state_count(), 4);
    }

    #[test]
    fn comments_and_blank_lines_ignored() {
        let text = "\
# top comment
.model hs

.inputs a  # trailing comment
.outputs b
.graph
a+ b+
b+ a-
a- b-
b- a+
.marking { <b-,a+> }
.end
";
        assert!(parse_g(text).is_ok());
    }

    #[test]
    fn explicit_places_and_choice() {
        let text = "\
.model choice
.inputs a b
.outputs c
.graph
p0 a+
p0 b+
a+ c+
b+ c+/1
c+ p1
c+/1 p1
p1 a-
a- c-
c- p0
.marking { p0 }
.end
";
        let stg = parse_g(text).unwrap();
        assert!(!stg.net().is_marked_graph());
        assert!(stg.net().place_count() > 0);
    }

    #[test]
    fn undeclared_signal_is_an_error() {
        let text = "\
.model bad
.inputs a
.graph
a+ z+
.marking { }
.end
";
        let err = parse_g(text).unwrap_err();
        assert!(matches!(err, StgError::Parse { .. }), "got {err:?}");
    }

    #[test]
    fn marking_with_unknown_place_is_an_error() {
        let text = "\
.model bad
.inputs a
.outputs b
.graph
a+ b+
b+ a+
.marking { nowhere }
.end
";
        let err = parse_g(text).unwrap_err();
        assert!(matches!(err, StgError::Parse { .. }));
    }

    #[test]
    fn dummy_transitions_parse() {
        let text = "\
.model dum
.inputs a
.dummy eps
.graph
a+ eps
eps a-
a- a+
.marking { <a-,a+> }
.end
";
        let stg = parse_g(text).unwrap();
        let sg = explore(&stg).unwrap();
        assert_eq!(sg.state_count(), 3);
    }

    #[test]
    fn roundtrip_fifo() {
        let original = models::fifo_stg();
        let text = write_g(&original);
        let parsed = parse_g(&text).unwrap();
        let sg_a = explore(&original).unwrap();
        let sg_b = explore(&parsed).unwrap();
        assert_eq!(sg_a.state_count(), sg_b.state_count());
        assert_eq!(sg_a.arc_count(), sg_b.arc_count());
        assert_eq!(parsed.signal_count(), original.signal_count());
    }

    #[test]
    fn roundtrip_celement_and_chain() {
        for stg in [models::celement_stg(), models::chain_stg(2)] {
            let text = write_g(&stg);
            let parsed = parse_g(&text).unwrap();
            let sg_a = explore(&stg).unwrap();
            let sg_b = explore(&parsed).unwrap();
            assert_eq!(sg_a.state_count(), sg_b.state_count(), "{text}");
        }
    }

    #[test]
    fn marking_token_counts() {
        let text = "\
.model counted
.inputs a
.graph
p0 a+
a+ p0
.marking { p0=2 }
.end
";
        let stg = parse_g(text).unwrap();
        assert_eq!(stg.initial_marking().total_tokens(), 2);
    }

    #[test]
    fn writer_emits_all_sections() {
        let text = write_g(&models::fifo_stg_csc());
        assert!(text.contains(".inputs li ri"));
        assert!(text.contains(".outputs lo ro"));
        assert!(text.contains(".internal x"));
        assert!(text.contains(".dummy eps"));
        assert!(text.contains(".marking"));
        assert!(text.ends_with(".end\n"));
    }
}
