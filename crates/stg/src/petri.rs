//! Petri nets: places, transitions, weighted arcs, markings and the token
//! game.
//!
//! The net structure is deliberately minimal and index-based; an
//! [`crate::Stg`] wraps a [`PetriNet`] with signal labels. Analysis code
//! (reachability, lazy state graphs) works on these indices.

use std::collections::BTreeMap;
use std::fmt;

use crate::error::StgError;
use crate::marking::{MarkingLayout, PackedMarking};

/// Index of a place.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct PlaceId(pub u32);

impl PlaceId {
    /// Returns the id as a `usize` index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for PlaceId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "p{}", self.0)
    }
}

/// Index of a transition.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct TransitionId(pub u32);

impl TransitionId {
    /// Returns the id as a `usize` index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for TransitionId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t{}", self.0)
    }
}

/// A token assignment to every place of a net.
///
/// Markings are dense vectors indexed by [`PlaceId`]. They are hashable so
/// reachability analysis can deduplicate states.
///
/// # Examples
///
/// ```
/// use rt_stg::{Marking, PlaceId};
///
/// let mut m = Marking::empty(3);
/// m.set(PlaceId(1), 1);
/// assert_eq!(m.tokens(PlaceId(1)), 1);
/// assert_eq!(m.total_tokens(), 1);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Marking {
    tokens: Vec<u16>,
}

impl Marking {
    /// A marking over `places` places with zero tokens everywhere.
    pub fn empty(places: usize) -> Self {
        Marking {
            tokens: vec![0; places],
        }
    }

    /// Builds a marking from an explicit token vector.
    pub fn from_tokens(tokens: Vec<u16>) -> Self {
        Marking { tokens }
    }

    /// Number of places covered by this marking.
    pub fn len(&self) -> usize {
        self.tokens.len()
    }

    /// Returns `true` if the marking covers no places.
    pub fn is_empty(&self) -> bool {
        self.tokens.is_empty()
    }

    /// Tokens on `place`.
    ///
    /// # Panics
    ///
    /// Panics if `place` is out of range.
    pub fn tokens(&self, place: PlaceId) -> u16 {
        self.tokens[place.index()]
    }

    /// Sets the token count of `place`.
    ///
    /// # Panics
    ///
    /// Panics if `place` is out of range.
    pub fn set(&mut self, place: PlaceId, count: u16) {
        self.tokens[place.index()] = count;
    }

    /// Total number of tokens in the net.
    pub fn total_tokens(&self) -> u32 {
        self.tokens.iter().map(|&t| u32::from(t)).sum()
    }

    /// Iterates over `(place, tokens)` pairs with non-zero tokens.
    pub fn marked_places(&self) -> impl Iterator<Item = (PlaceId, u16)> + '_ {
        self.tokens
            .iter()
            .enumerate()
            .filter(|(_, &t)| t > 0)
            .map(|(i, &t)| (PlaceId(i as u32), t))
    }
}

impl fmt::Display for Marking {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{")?;
        let mut first = true;
        for (place, tokens) in self.marked_places() {
            if !first {
                write!(f, ", ")?;
            }
            first = false;
            if tokens == 1 {
                write!(f, "{place}")?;
            } else {
                write!(f, "{place}:{tokens}")?;
            }
        }
        write!(f, "}}")
    }
}

/// A weighted arc endpoint: the place and the number of tokens
/// consumed/produced.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Arc {
    /// Connected place.
    pub place: PlaceId,
    /// Arc weight (tokens moved per firing); ordinary nets use 1.
    pub weight: u16,
}

/// A Petri net: places, transitions and weighted pre/post arcs.
///
/// The net stores, per transition, its preset (consumed places) and postset
/// (produced places); per place, the transitions it feeds and is fed by.
/// Names are optional and used by the `.g` parser/writer and diagnostics.
///
/// # Examples
///
/// A two-transition ring with one token:
///
/// ```
/// use rt_stg::{Marking, PetriNet};
///
/// let mut net = PetriNet::new();
/// let p0 = net.add_place("p0");
/// let p1 = net.add_place("p1");
/// let t0 = net.add_transition("t0");
/// let t1 = net.add_transition("t1");
/// net.add_arc_pt(p0, t0, 1);
/// net.add_arc_tp(t0, p1, 1);
/// net.add_arc_pt(p1, t1, 1);
/// net.add_arc_tp(t1, p0, 1);
///
/// let mut m = Marking::empty(net.place_count());
/// m.set(p0, 1);
/// assert!(net.is_enabled(t0, &m));
/// assert!(!net.is_enabled(t1, &m));
/// let m2 = net.fire(t0, &m).expect("t0 enabled");
/// assert!(net.is_enabled(t1, &m2));
/// ```
#[derive(Debug, Clone, Default)]
pub struct PetriNet {
    place_names: Vec<String>,
    transition_names: Vec<String>,
    /// Per-transition preset arcs.
    presets: Vec<Vec<Arc>>,
    /// Per-transition postset arcs.
    postsets: Vec<Vec<Arc>>,
    /// Per-place consumers (transitions with the place in their preset).
    consumers: Vec<Vec<TransitionId>>,
    /// Per-place producers (transitions with the place in their postset).
    producers: Vec<Vec<TransitionId>>,
}

impl PetriNet {
    /// Creates an empty net.
    pub fn new() -> Self {
        PetriNet::default()
    }

    /// Number of places.
    pub fn place_count(&self) -> usize {
        self.place_names.len()
    }

    /// Number of transitions.
    pub fn transition_count(&self) -> usize {
        self.transition_names.len()
    }

    /// Adds a place with the given diagnostic name and returns its id.
    pub fn add_place(&mut self, name: impl Into<String>) -> PlaceId {
        let id = PlaceId(self.place_names.len() as u32);
        self.place_names.push(name.into());
        self.consumers.push(Vec::new());
        self.producers.push(Vec::new());
        id
    }

    /// Adds a transition with the given diagnostic name and returns its id.
    pub fn add_transition(&mut self, name: impl Into<String>) -> TransitionId {
        let id = TransitionId(self.transition_names.len() as u32);
        self.transition_names.push(name.into());
        self.presets.push(Vec::new());
        self.postsets.push(Vec::new());
        id
    }

    /// Adds a place→transition (input/consuming) arc.
    ///
    /// # Panics
    ///
    /// Panics if either endpoint is out of range or `weight == 0`.
    pub fn add_arc_pt(&mut self, place: PlaceId, transition: TransitionId, weight: u16) {
        assert!(weight > 0, "arc weight must be positive");
        assert!(place.index() < self.place_count(), "place out of range");
        self.presets[transition.index()].push(Arc { place, weight });
        self.consumers[place.index()].push(transition);
    }

    /// Adds a transition→place (output/producing) arc.
    ///
    /// # Panics
    ///
    /// Panics if either endpoint is out of range or `weight == 0`.
    pub fn add_arc_tp(&mut self, transition: TransitionId, place: PlaceId, weight: u16) {
        assert!(weight > 0, "arc weight must be positive");
        assert!(place.index() < self.place_count(), "place out of range");
        self.postsets[transition.index()].push(Arc { place, weight });
        self.producers[place.index()].push(transition);
    }

    /// Reassembles a net from its six stored vectors — the
    /// exact-reconstruction constructor the service wire codec uses.
    ///
    /// Replaying arcs per transition through
    /// [`Self::add_arc_pt`]/[`Self::add_arc_tp`]
    /// cannot reproduce an arbitrary net byte-for-byte: the per-place
    /// `consumers`/`producers` lists record *global* arc-insertion
    /// order, which interleaves across transitions and feeds
    /// [`conflict_groups`](PetriNet::conflict_groups) — and through it
    /// candidate tie-breaking in CSC resolution. This constructor takes
    /// all six vectors verbatim and validates that they describe one
    /// consistent net.
    ///
    /// # Errors
    ///
    /// [`StgError::Parse`] (line 0) when lengths disagree, an arc index
    /// is out of range, a weight is zero, or the per-place lists are not
    /// a permutation-consistent view of the per-transition arcs.
    #[allow(clippy::too_many_arguments)]
    pub fn from_parts(
        place_names: Vec<String>,
        transition_names: Vec<String>,
        presets: Vec<Vec<Arc>>,
        postsets: Vec<Vec<Arc>>,
        consumers: Vec<Vec<TransitionId>>,
        producers: Vec<Vec<TransitionId>>,
    ) -> Result<PetriNet, StgError> {
        let inconsistent = |message: String| StgError::Parse { line: 0, message };
        let places = place_names.len();
        let transitions = transition_names.len();
        if presets.len() != transitions || postsets.len() != transitions {
            return Err(inconsistent(format!(
                "arc lists cover {}/{} transitions, net has {transitions}",
                presets.len(),
                postsets.len()
            )));
        }
        if consumers.len() != places || producers.len() != places {
            return Err(inconsistent(format!(
                "place lists cover {}/{} places, net has {places}",
                consumers.len(),
                producers.len()
            )));
        }
        // The per-place lists must be exactly the per-transition arcs
        // seen from the other side (as multisets; their order is the
        // free part this constructor exists to preserve).
        for (arcs, lists, role) in [
            (&presets, &consumers, "preset"),
            (&postsets, &producers, "postset"),
        ] {
            let mut expected: Vec<BTreeMap<u32, usize>> = vec![BTreeMap::new(); places];
            for (t, arcs) in arcs.iter().enumerate() {
                for arc in arcs {
                    if arc.place.index() >= places {
                        return Err(inconsistent(format!(
                            "{role} arc of transition {t} names place {} of {places}",
                            arc.place
                        )));
                    }
                    if arc.weight == 0 {
                        return Err(inconsistent(format!(
                            "{role} arc of transition {t} has zero weight"
                        )));
                    }
                    *expected[arc.place.index()].entry(t as u32).or_insert(0) += 1;
                }
            }
            for (p, list) in lists.iter().enumerate() {
                let mut got: BTreeMap<u32, usize> = BTreeMap::new();
                for t in list {
                    if t.index() >= transitions {
                        return Err(inconsistent(format!(
                            "place {p} {role} list names transition {t} of {transitions}"
                        )));
                    }
                    *got.entry(t.0).or_insert(0) += 1;
                }
                if got != expected[p] {
                    return Err(inconsistent(format!(
                        "place {p} {role} list disagrees with the transition arcs"
                    )));
                }
            }
        }
        Ok(PetriNet {
            place_names,
            transition_names,
            presets,
            postsets,
            consumers,
            producers,
        })
    }

    /// Name of `place`.
    pub fn place_name(&self, place: PlaceId) -> &str {
        &self.place_names[place.index()]
    }

    /// Name of `transition`.
    pub fn transition_name(&self, transition: TransitionId) -> &str {
        &self.transition_names[transition.index()]
    }

    /// Preset arcs (consumed places) of `transition`.
    pub fn preset(&self, transition: TransitionId) -> &[Arc] {
        &self.presets[transition.index()]
    }

    /// Postset arcs (produced places) of `transition`.
    pub fn postset(&self, transition: TransitionId) -> &[Arc] {
        &self.postsets[transition.index()]
    }

    /// Transitions consuming from `place`.
    pub fn consumers(&self, place: PlaceId) -> &[TransitionId] {
        &self.consumers[place.index()]
    }

    /// Transitions producing into `place`.
    pub fn producers(&self, place: PlaceId) -> &[TransitionId] {
        &self.producers[place.index()]
    }

    /// Iterates over all place ids.
    pub fn places(&self) -> impl Iterator<Item = PlaceId> {
        (0..self.place_count() as u32).map(PlaceId)
    }

    /// Iterates over all transition ids.
    pub fn transitions(&self) -> impl Iterator<Item = TransitionId> {
        (0..self.transition_count() as u32).map(TransitionId)
    }

    /// Whether `transition` is enabled in marking `m`.
    pub fn is_enabled(&self, transition: TransitionId, m: &Marking) -> bool {
        self.preset(transition)
            .iter()
            .all(|arc| m.tokens(arc.place) >= arc.weight)
    }

    /// All transitions enabled in `m`.
    pub fn enabled(&self, m: &Marking) -> Vec<TransitionId> {
        self.transitions()
            .filter(|&t| self.is_enabled(t, m))
            .collect()
    }

    /// Fires `transition` from marking `m`, returning the successor marking,
    /// or `None` if the transition is not enabled.
    pub fn fire(&self, transition: TransitionId, m: &Marking) -> Option<Marking> {
        if !self.is_enabled(transition, m) {
            return None;
        }
        let mut next = m.clone();
        for arc in self.preset(transition) {
            let current = next.tokens(arc.place);
            next.set(arc.place, current - arc.weight);
        }
        for arc in self.postset(transition) {
            let current = next.tokens(arc.place);
            next.set(arc.place, current.saturating_add(arc.weight));
        }
        Some(next)
    }

    /// Whether `transition` is enabled in packed marking `m`.
    ///
    /// The packed counterpart of [`PetriNet::is_enabled`]; performs no
    /// heap allocation.
    #[inline]
    pub fn is_enabled_packed(
        &self,
        transition: TransitionId,
        m: &PackedMarking,
        layout: &MarkingLayout,
    ) -> bool {
        self.preset(transition)
            .iter()
            .all(|arc| m.tokens(layout, arc.place) >= arc.weight)
    }

    /// Fires `transition` from packed marking `m`, writing the successor
    /// into `out` (caller-provided to keep the hot path allocation-free
    /// for inline layouts).
    ///
    /// The transition must be enabled (checked in debug builds only).
    /// With `bound = Some(b)`, producing more than `b` tokens on a place
    /// returns `Err(place)`; with `bound = None` token counts saturate at
    /// the layout capacity, mirroring [`PetriNet::fire`]'s saturating
    /// `u16` arithmetic under the default 16-bit layout.
    ///
    /// # Errors
    ///
    /// Returns the first place pushed past `bound`.
    #[inline]
    pub fn fire_packed_into(
        &self,
        transition: TransitionId,
        m: &PackedMarking,
        layout: &MarkingLayout,
        bound: Option<u16>,
        out: &mut PackedMarking,
    ) -> Result<(), PlaceId> {
        debug_assert!(self.is_enabled_packed(transition, m, layout));
        out.clone_from(m);
        for arc in self.preset(transition) {
            let current = out.tokens(layout, arc.place);
            out.set_tokens(layout, arc.place, current - arc.weight);
        }
        for arc in self.postset(transition) {
            let current = out.tokens(layout, arc.place);
            let next = current.saturating_add(arc.weight);
            match bound {
                Some(b) if next > b => return Err(arc.place),
                _ => out.set_tokens(layout, arc.place, next.min(layout.capacity())),
            }
        }
        Ok(())
    }

    /// Checks that `m` keeps every place within `bound` tokens.
    ///
    /// # Errors
    ///
    /// Returns [`StgError::Unbounded`] naming the first offending place.
    pub fn check_bound(&self, m: &Marking, bound: u16) -> Result<(), StgError> {
        for place in self.places() {
            if m.tokens(place) > bound {
                return Err(StgError::Unbounded {
                    place: self.place_name(place).to_string(),
                    bound: u32::from(bound),
                });
            }
        }
        Ok(())
    }

    /// A net is a *marked graph* if every place has at most one consumer and
    /// one producer (no choice). Marked graphs model delay-insensitive
    /// pipelines such as the paper's FIFO ring and have strong liveness
    /// guarantees.
    pub fn is_marked_graph(&self) -> bool {
        self.places()
            .all(|p| self.consumers(p).len() <= 1 && self.producers(p).len() <= 1)
    }

    /// A net is *free choice* if whenever a place feeds several transitions,
    /// it is the unique input place of each of them.
    pub fn is_free_choice(&self) -> bool {
        self.places().all(|p| {
            let consumers = self.consumers(p);
            consumers.len() <= 1
                || consumers
                    .iter()
                    .all(|&t| self.preset(t).len() == 1 && self.preset(t)[0].place == p)
        })
    }

    /// Structural conflict set: for each place with multiple consumers, the
    /// group of transitions in choice with each other.
    pub fn conflict_groups(&self) -> Vec<Vec<TransitionId>> {
        self.places()
            .filter(|&p| self.consumers(p).len() > 1)
            .map(|p| self.consumers(p).to_vec())
            .collect()
    }

    /// Degree statistics used in diagnostics: `(max preset, max postset)`.
    pub fn degree_stats(&self) -> (usize, usize) {
        let max_pre = self.presets.iter().map(Vec::len).max().unwrap_or(0);
        let max_post = self.postsets.iter().map(Vec::len).max().unwrap_or(0);
        (max_pre, max_post)
    }

    /// Renders the net as Graphviz DOT for debugging.
    pub fn to_dot(&self, marking: &Marking) -> String {
        let mut out = String::from("digraph petri {\n  rankdir=LR;\n");
        for place in self.places() {
            let tokens = marking.tokens(place);
            let label = if tokens > 0 {
                format!("{} ({})", self.place_name(place), tokens)
            } else {
                self.place_name(place).to_string()
            };
            out.push_str(&format!(
                "  \"{}\" [shape=circle,label=\"{}\"];\n",
                self.place_name(place),
                label
            ));
        }
        for transition in self.transitions() {
            out.push_str(&format!(
                "  \"{}\" [shape=box];\n",
                self.transition_name(transition)
            ));
        }
        for transition in self.transitions() {
            for arc in self.preset(transition) {
                out.push_str(&format!(
                    "  \"{}\" -> \"{}\";\n",
                    self.place_name(arc.place),
                    self.transition_name(transition)
                ));
            }
            for arc in self.postset(transition) {
                out.push_str(&format!(
                    "  \"{}\" -> \"{}\";\n",
                    self.transition_name(transition),
                    self.place_name(arc.place)
                ));
            }
        }
        out.push_str("}\n");
        out
    }

    /// Looks up a place id by name (linear scan; intended for parsing and
    /// tests, not inner loops).
    pub fn place_by_name(&self, name: &str) -> Option<PlaceId> {
        self.place_names
            .iter()
            .position(|n| n == name)
            .map(|i| PlaceId(i as u32))
    }

    /// Looks up a transition id by name.
    pub fn transition_by_name(&self, name: &str) -> Option<TransitionId> {
        self.transition_names
            .iter()
            .position(|n| n == name)
            .map(|i| TransitionId(i as u32))
    }

    /// Counts tokens per place name, for human-readable marking dumps.
    pub fn describe_marking(&self, m: &Marking) -> BTreeMap<String, u16> {
        m.marked_places()
            .map(|(p, t)| (self.place_name(p).to_string(), t))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ring2() -> (PetriNet, Marking, TransitionId, TransitionId) {
        let mut net = PetriNet::new();
        let p0 = net.add_place("p0");
        let p1 = net.add_place("p1");
        let t0 = net.add_transition("t0");
        let t1 = net.add_transition("t1");
        net.add_arc_pt(p0, t0, 1);
        net.add_arc_tp(t0, p1, 1);
        net.add_arc_pt(p1, t1, 1);
        net.add_arc_tp(t1, p0, 1);
        let mut m = Marking::empty(net.place_count());
        m.set(p0, 1);
        (net, m, t0, t1)
    }

    #[test]
    fn firing_moves_the_token_around_the_ring() {
        let (net, m, t0, t1) = ring2();
        assert_eq!(net.enabled(&m), vec![t0]);
        let m1 = net.fire(t0, &m).unwrap();
        assert_eq!(net.enabled(&m1), vec![t1]);
        let m2 = net.fire(t1, &m1).unwrap();
        assert_eq!(m2, m, "ring returns to the initial marking");
    }

    #[test]
    fn firing_a_disabled_transition_returns_none() {
        let (net, m, _, t1) = ring2();
        assert!(net.fire(t1, &m).is_none());
    }

    #[test]
    fn ring_is_a_marked_graph_and_free_choice() {
        let (net, _, _, _) = ring2();
        assert!(net.is_marked_graph());
        assert!(net.is_free_choice());
        assert!(net.conflict_groups().is_empty());
    }

    #[test]
    fn choice_place_breaks_marked_graph_property() {
        let mut net = PetriNet::new();
        let p = net.add_place("choice");
        let a = net.add_transition("a");
        let b = net.add_transition("b");
        net.add_arc_pt(p, a, 1);
        net.add_arc_pt(p, b, 1);
        assert!(!net.is_marked_graph());
        assert!(net.is_free_choice(), "single-input choice is free choice");
        assert_eq!(net.conflict_groups(), vec![vec![a, b]]);
    }

    #[test]
    fn non_free_choice_detected() {
        let mut net = PetriNet::new();
        let p = net.add_place("p");
        let q = net.add_place("q");
        let a = net.add_transition("a");
        let b = net.add_transition("b");
        net.add_arc_pt(p, a, 1);
        net.add_arc_pt(p, b, 1);
        net.add_arc_pt(q, a, 1); // `a` has a second input: not free choice
        assert!(!net.is_free_choice());
    }

    #[test]
    fn weighted_arcs_respected() {
        let mut net = PetriNet::new();
        let p = net.add_place("p");
        let t = net.add_transition("t");
        net.add_arc_pt(p, t, 2);
        let mut m = Marking::empty(1);
        m.set(p, 1);
        assert!(!net.is_enabled(t, &m));
        m.set(p, 2);
        assert!(net.is_enabled(t, &m));
        let next = net.fire(t, &m).unwrap();
        assert_eq!(next.tokens(p), 0);
    }

    #[test]
    fn bound_check_reports_offending_place() {
        let (net, mut m, _, _) = ring2();
        m.set(PlaceId(1), 3);
        let err = net.check_bound(&m, 1).unwrap_err();
        assert_eq!(
            err,
            StgError::Unbounded {
                place: "p1".to_string(),
                bound: 1
            }
        );
    }

    #[test]
    fn marking_display_lists_marked_places() {
        let (_, m, _, _) = ring2();
        assert_eq!(m.to_string(), "{p0}");
        let mut m2 = m.clone();
        m2.set(PlaceId(1), 2);
        assert_eq!(m2.to_string(), "{p0, p1:2}");
    }

    #[test]
    fn from_parts_reproduces_a_net_exactly() {
        let (net, _, _, _) = ring2();
        let rebuilt = PetriNet::from_parts(
            (0..net.place_count())
                .map(|p| net.place_name(PlaceId(p as u32)).to_string())
                .collect(),
            (0..net.transition_count())
                .map(|t| net.transition_name(TransitionId(t as u32)).to_string())
                .collect(),
            net.transitions().map(|t| net.preset(t).to_vec()).collect(),
            net.transitions().map(|t| net.postset(t).to_vec()).collect(),
            net.places().map(|p| net.consumers(p).to_vec()).collect(),
            net.places().map(|p| net.producers(p).to_vec()).collect(),
        )
        .expect("consistent parts");
        assert_eq!(format!("{rebuilt:?}"), format!("{net:?}"));
    }

    #[test]
    fn from_parts_rejects_inconsistent_views() {
        // A preset arc whose place has an empty consumers list.
        let err = PetriNet::from_parts(
            vec!["p".into()],
            vec!["t".into()],
            vec![vec![Arc {
                place: PlaceId(0),
                weight: 1,
            }]],
            vec![vec![]],
            vec![vec![]],
            vec![vec![]],
        )
        .unwrap_err();
        assert!(matches!(err, StgError::Parse { .. }), "got {err:?}");
        // Out-of-range transition in a producers list.
        let err = PetriNet::from_parts(
            vec!["p".into()],
            vec![],
            vec![],
            vec![],
            vec![vec![]],
            vec![vec![TransitionId(7)]],
        )
        .unwrap_err();
        assert!(matches!(err, StgError::Parse { .. }), "got {err:?}");
    }

    #[test]
    fn name_lookups() {
        let (net, _, t0, _) = ring2();
        assert_eq!(net.place_by_name("p1"), Some(PlaceId(1)));
        assert_eq!(net.transition_by_name("t0"), Some(t0));
        assert_eq!(net.place_by_name("zzz"), None);
    }

    #[test]
    fn dot_output_mentions_all_nodes() {
        let (net, m, _, _) = ring2();
        let dot = net.to_dot(&m);
        for name in ["p0", "p1", "t0", "t1"] {
            assert!(dot.contains(name), "missing {name} in DOT output");
        }
    }
}
