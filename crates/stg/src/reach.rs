//! Explicit reachability analysis: STG → [`StateGraph`].
//!
//! The analyser plays the token game from the initial marking, assigns each
//! reached marking a binary signal code, verifies *consistency* (edges of
//! each signal strictly alternate along every path) and *safeness* (the net
//! stays within a configurable token bound), and produces the state graph
//! consumed by logic synthesis.
//!
//! ## Hot-path layout
//!
//! Exploration never touches heap-allocated token vectors: markings are
//! bit-packed into inline words ([`crate::marking::PackedMarking`]) under
//! a per-net [`MarkingLayout`] and interned in a [`MarkingArena`], whose
//! FxHash-keyed table maps packed words to dense 4-byte ids. The BFS
//! queue is implicit (ids are assigned in discovery order, so the work
//! list is just the next unprocessed id) and arcs accumulate directly
//! into the compressed-sparse-row buffers the [`StateGraph`] keeps, so
//! for a safe net with ≤ 64 places a visited state costs a `u64` copy,
//! one hash and no allocation.

use crate::error::StgError;
use crate::marking::{MarkingArena, MarkingId, MarkingLayout, PackedMarking};
use crate::petri::PlaceId;
use crate::signal::SignalId;
use crate::state_graph::{CsrBuilder, StateArc, StateGraph, StateId};
use crate::stg::{Stg, TransitionLabel};

/// Tuning knobs for [`explore_with`].
#[derive(Debug, Clone)]
pub struct ExploreOptions {
    /// Maximum number of states before aborting with
    /// [`StgError::StateLimitExceeded`].
    pub state_limit: usize,
    /// Per-place token bound (1 = safe net). `None` disables the check.
    pub bound: Option<u16>,
    /// When `true`, a reachable deadlock is an error.
    pub forbid_deadlock: bool,
}

impl Default for ExploreOptions {
    fn default() -> Self {
        ExploreOptions {
            state_limit: 1 << 20,
            bound: Some(1),
            forbid_deadlock: false,
        }
    }
}

/// Explores `stg` with default options (2^20-state limit, safe-net check).
///
/// # Errors
///
/// Propagates every failure mode of [`explore_with`].
///
/// # Examples
///
/// ```
/// use rt_stg::{models, explore};
///
/// # fn main() -> Result<(), rt_stg::StgError> {
/// let sg = explore(&models::fifo_stg())?;
/// assert!(sg.is_strongly_connected());
/// # Ok(())
/// # }
/// ```
pub fn explore(stg: &Stg) -> Result<StateGraph, StgError> {
    explore_with(stg, &ExploreOptions::default())
}

/// Explores `stg` under explicit [`ExploreOptions`].
///
/// # Errors
///
/// * [`StgError::TooManySignals`] — more than 64 signals.
/// * [`StgError::StateLimitExceeded`] — exploration exceeded the limit.
/// * [`StgError::Unbounded`] — a place exceeded the token bound.
/// * [`StgError::Inconsistent`] — some signal's edges do not alternate.
/// * [`StgError::Deadlock`] — with `forbid_deadlock`, a marking enabling
///   nothing was reached.
pub fn explore_with(stg: &Stg, options: &ExploreOptions) -> Result<StateGraph, StgError> {
    if stg.signal_count() > 64 {
        return Err(StgError::TooManySignals(stg.signal_count()));
    }
    let net = stg.net();
    let initial_marking = stg.initial_marking();
    let layout = marking_layout(stg, options)?;
    let initial_code = infer_initial_code(stg, options, &layout)?;

    // Start small: tables grow geometrically, so large explorations pay
    // a handful of rehashes while small ones (the common case in the
    // synthesis flow) avoid faulting in kilobytes they never touch.
    let mut arena = MarkingArena::with_capacity(layout, 64);
    let mut codes: Vec<u64> = Vec::with_capacity(64);
    let mut builder = CsrBuilder::with_capacity(64, 256);
    // Reused firing scratch: keeps the hot loop allocation-free even for
    // spilled (boxed) layouts.
    let mut scratch = PackedMarking::zero(&layout);

    arena.intern(PackedMarking::pack(&layout, &initial_marking));
    codes.push(initial_code);

    // Ids are handed out in discovery order and the BFS queue is FIFO, so
    // the work list is simply "the next id not yet processed" — no queue.
    // Rows therefore complete in id order, exactly the CsrBuilder
    // contract.
    let mut state = 0usize;
    while state < arena.len() {
        builder.start_row();
        let marking = arena.resolve(MarkingId(state as u32)).clone();
        let code = codes[state];
        let mut any_enabled = false;
        for transition in net.transitions() {
            if !net.is_enabled_packed(transition, &marking, &layout) {
                continue;
            }
            any_enabled = true;
            net.fire_packed_into(transition, &marking, &layout, options.bound, &mut scratch)
                .map_err(|place| StgError::Unbounded {
                    place: net.place_name(place).to_string(),
                    bound: u32::from(options.bound.unwrap_or(u16::MAX)),
                })?;
            let (event, next_code) = match stg.label(transition) {
                TransitionLabel::Silent => (None, code),
                TransitionLabel::Event(ev) => {
                    let current = code >> ev.signal.index() & 1 == 1;
                    if current != ev.edge.source_value() {
                        return Err(StgError::Inconsistent {
                            signal: stg.signal_name(ev.signal).to_string(),
                            detail: format!(
                                "{} fires in state {} where {} is already {}",
                                stg.event_name(ev),
                                marking.unpack(&layout),
                                stg.signal_name(ev.signal),
                                u8::from(current)
                            ),
                        });
                    }
                    let next = if ev.edge.target_value() {
                        code | 1 << ev.signal.index()
                    } else {
                        code & !(1 << ev.signal.index())
                    };
                    (Some(ev), next)
                }
            };
            let (next_id, fresh) = arena.intern_ref(&scratch);
            if fresh {
                if arena.len() > options.state_limit {
                    return Err(StgError::StateLimitExceeded(options.state_limit));
                }
                codes.push(next_code);
            } else if codes[next_id.index()] != next_code {
                // The same marking was reached with two different signal
                // codes: the STG is not consistent.
                let bit = (codes[next_id.index()] ^ next_code).trailing_zeros();
                return Err(StgError::Inconsistent {
                    signal: stg.signal_name(SignalId(bit)).to_string(),
                    detail: format!(
                        "marking {} reached with codes {:b} and {:b}",
                        arena.resolve(next_id).unpack(&layout),
                        codes[next_id.index()],
                        next_code
                    ),
                });
            }
            builder.push_arc(StateArc { event, to: StateId(next_id.0) });
        }
        if !any_enabled && options.forbid_deadlock {
            return Err(StgError::Deadlock(format!("{}", marking.unpack(&layout))));
        }
        state += 1;
    }
    let (offsets, arcs) = builder.finish();

    let signal_names = stg
        .signals()
        .map(|s| stg.signal_name(s).to_string())
        .collect();
    let signal_kinds = stg.signals().map(|s| stg.signal_kind(s)).collect();
    Ok(StateGraph::from_csr_parts(
        signal_names,
        signal_kinds,
        codes,
        offsets,
        arcs,
        arena.into_markings(),
        layout,
        StateId(0),
    ))
}

/// Result of a counting-only explicit walk ([`count_markings_with`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ExplicitCount {
    /// Number of distinct reachable markings.
    pub markings: u64,
    /// Breadth-first depth at which the walk converged (number of
    /// frontier layers, counting the initial marking as layer 1).
    pub iterations: usize,
}

/// Counts the reachable markings of `stg` without building a state
/// graph: the packed BFS of [`explore_with`] minus codes, arcs and the
/// consistency machinery. This is the explicit backend of
/// [`crate::engine::ReachEngine`]'s set-level queries.
///
/// Because no binary codes are assigned, the walk has **no 64-signal
/// cap** and performs **no consistency check** — it answers "how many
/// markings" for any safe net the packed layouts can represent, which
/// is what the symbolic backend answers too.
///
/// # Errors
///
/// * [`StgError::StateLimitExceeded`] — exploration exceeded the limit.
/// * [`StgError::Unbounded`] — a place exceeded the token bound.
/// * [`StgError::Deadlock`] — with `forbid_deadlock`, a marking enabling
///   nothing was reached.
pub fn count_markings_with(stg: &Stg, options: &ExploreOptions) -> Result<ExplicitCount, StgError> {
    let net = stg.net();
    let layout = marking_layout(stg, options)?;
    let mut arena = MarkingArena::with_capacity(layout, 64);
    let mut scratch = PackedMarking::zero(&layout);
    arena.intern(PackedMarking::pack(&layout, &stg.initial_marking()));

    let mut state = 0usize;
    // Depth tracking: `layer_end` is the first id of the *next* BFS
    // layer; ids are dense and in discovery order, so layers are just
    // index ranges.
    let mut iterations = 1usize;
    let mut layer_end = arena.len();
    while state < arena.len() {
        if state == layer_end {
            iterations += 1;
            layer_end = arena.len();
        }
        let marking = arena.resolve(MarkingId(state as u32)).clone();
        let mut any_enabled = false;
        for transition in net.transitions() {
            if !net.is_enabled_packed(transition, &marking, &layout) {
                continue;
            }
            any_enabled = true;
            net.fire_packed_into(transition, &marking, &layout, options.bound, &mut scratch)
                .map_err(|place| StgError::Unbounded {
                    place: net.place_name(place).to_string(),
                    bound: u32::from(options.bound.unwrap_or(u16::MAX)),
                })?;
            let (_, fresh) = arena.intern_ref(&scratch);
            if fresh && arena.len() > options.state_limit {
                return Err(StgError::StateLimitExceeded(options.state_limit));
            }
        }
        if !any_enabled && options.forbid_deadlock {
            return Err(StgError::Deadlock(format!("{}", marking.unpack(&layout))));
        }
        state += 1;
    }
    Ok(ExplicitCount { markings: arena.len() as u64, iterations })
}

/// Builds the packing layout for exploring `stg` under `options`, and
/// up-front rejects an initial marking that already violates the bound
/// (the packed fields are sized for `bound`, so such a marking could not
/// even be represented).
fn marking_layout(stg: &Stg, options: &ExploreOptions) -> Result<MarkingLayout, StgError> {
    let net = stg.net();
    let initial = stg.initial_marking();
    if let Some(bound) = options.bound {
        for place in net.places() {
            if initial.tokens(place) > bound {
                return Err(StgError::Unbounded {
                    place: net.place_name(place).to_string(),
                    bound: u32::from(bound),
                });
            }
        }
    }
    Ok(MarkingLayout::new(net.place_count(), options.bound))
}

/// Determines the initial binary code.
///
/// Explicit values set with [`Stg::set_initial_value`] win; remaining
/// signals are inferred from the *first edge* of the signal encountered in a
/// breadth-first sweep of the token game (a first rise ⇒ initially 0, a
/// first fall ⇒ initially 1). Signals that never transition default to 0.
///
/// The visited set is the interning arena itself (a marking is "seen"
/// exactly when it is already interned), replacing the historical
/// `HashMap<Marking, ()>`-as-a-set over heap token vectors.
fn infer_initial_code(
    stg: &Stg,
    options: &ExploreOptions,
    layout: &MarkingLayout,
) -> Result<u64, StgError> {
    let mut value: Vec<Option<bool>> = (0..stg.signal_count())
        .map(|i| stg.initial_value(SignalId(i as u32)))
        .collect();
    let mut unresolved = value.iter().filter(|v| v.is_none()).count();
    if unresolved == 0 {
        return Ok(pack_code(&value));
    }

    let net = stg.net();
    let mut arena = MarkingArena::with_capacity(*layout, 64);
    let mut scratch = PackedMarking::zero(layout);
    arena.intern(PackedMarking::pack(layout, &stg.initial_marking()));

    let mut state = 0usize;
    while state < arena.len() {
        if unresolved == 0 || arena.len() > options.state_limit {
            break;
        }
        let marking = arena.resolve(MarkingId(state as u32)).clone();
        for transition in net.transitions() {
            if !net.is_enabled_packed(transition, &marking, layout) {
                continue;
            }
            if let TransitionLabel::Event(ev) = stg.label(transition) {
                let slot = &mut value[ev.signal.index()];
                if slot.is_none() {
                    *slot = Some(ev.edge.source_value());
                    unresolved -= 1;
                }
            }
            net.fire_packed_into(transition, &marking, layout, options.bound, &mut scratch)
                .map_err(|place: PlaceId| StgError::Unbounded {
                    place: net.place_name(place).to_string(),
                    bound: u32::from(options.bound.unwrap_or(u16::MAX)),
                })?;
            arena.intern_ref(&scratch);
        }
        state += 1;
    }
    Ok(pack_code(&value))
}

fn pack_code(values: &[Option<bool>]) -> u64 {
    let mut code = 0u64;
    for (i, v) in values.iter().enumerate() {
        if v.unwrap_or(false) {
            code |= 1 << i;
        }
    }
    code
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::signal::{Edge, SignalKind};

    fn handshake() -> Stg {
        let mut stg = Stg::new("hs");
        let a = stg.add_signal("a", SignalKind::Input).unwrap();
        let b = stg.add_signal("b", SignalKind::Output).unwrap();
        let ap = stg.transition_for(a, Edge::Rise);
        let bp = stg.transition_for(b, Edge::Rise);
        let am = stg.transition_for(a, Edge::Fall);
        let bm = stg.transition_for(b, Edge::Fall);
        stg.arc(ap, bp);
        stg.arc(bp, am);
        stg.arc(am, bm);
        stg.marked_arc(bm, ap);
        stg
    }

    #[test]
    fn handshake_has_four_states() {
        let sg = explore(&handshake()).unwrap();
        assert_eq!(sg.state_count(), 4);
        assert_eq!(sg.arc_count(), 4);
        assert!(sg.is_strongly_connected());
        assert_eq!(sg.code(sg.initial()), 0);
    }

    #[test]
    fn initial_values_inferred_from_first_edges() {
        // b- fires first for b if we mark the b- arc instead: initial b = 1.
        let mut stg = Stg::new("inv");
        let a = stg.add_signal("a", SignalKind::Input).unwrap();
        let b = stg.add_signal("b", SignalKind::Output).unwrap();
        let ap = stg.transition_for(a, Edge::Rise);
        let bm = stg.transition_for(b, Edge::Fall);
        let am = stg.transition_for(a, Edge::Fall);
        let bp = stg.transition_for(b, Edge::Rise);
        stg.arc(ap, bm);
        stg.arc(bm, am);
        stg.arc(am, bp);
        stg.marked_arc(bp, ap);
        let sg = explore(&stg).unwrap();
        // Initial: a = 0 (a+ first), b = 1 (b- first).
        assert_eq!(sg.code(sg.initial()), 0b10);
    }

    #[test]
    fn explicit_initial_values_override_inference() {
        let mut stg = handshake();
        let a = stg.signal_by_name("a").unwrap();
        stg.set_initial_value(a, false);
        let sg = explore(&stg).unwrap();
        assert_eq!(sg.code(sg.initial()) & 1, 0);
    }

    #[test]
    fn inconsistent_stg_rejected() {
        // a+ followed by a+ again without a-.
        let mut stg = Stg::new("bad");
        let a = stg.add_signal("a", SignalKind::Input).unwrap();
        let t1 = stg.transition_for(a, Edge::Rise);
        let t2 = stg.transition_for(a, Edge::Rise);
        stg.arc(t1, t2); // a+ twice in a row: inconsistent on purpose
        let p = stg.add_place("start");
        stg.set_tokens(p, 1);
        stg.arc_from_place(p, t1);
        let err = explore(&stg).unwrap_err();
        assert!(matches!(err, StgError::Inconsistent { .. }), "got {err:?}");
    }

    #[test]
    fn unbounded_net_rejected_with_safe_bound() {
        // A transition that only produces tokens.
        let mut stg = Stg::new("pump");
        let a = stg.add_signal("a", SignalKind::Input).unwrap();
        let t1 = stg.transition_for(a, Edge::Rise);
        let t2 = stg.transition_for(a, Edge::Fall);
        let p_loop = stg.add_place("loop");
        stg.set_tokens(p_loop, 1);
        stg.arc_from_place(p_loop, t1);
        stg.arc_to_place(t1, p_loop); // self-loop keeps t1 live
        let sink = stg.add_place("sink");
        stg.arc_to_place(t1, sink); // accumulates tokens unboundedly
        stg.arc_from_place(sink, t2);
        stg.arc_to_place(t2, sink);
        stg.arc_to_place(t2, sink);
        let err = explore(&stg).unwrap_err();
        assert!(
            matches!(err, StgError::Unbounded { .. } | StgError::Inconsistent { .. }),
            "got {err:?}"
        );
    }

    #[test]
    fn state_limit_enforced() {
        let stg = handshake();
        let options = ExploreOptions { state_limit: 2, ..ExploreOptions::default() };
        let err = explore_with(&stg, &options).unwrap_err();
        assert_eq!(err, StgError::StateLimitExceeded(2));
    }

    #[test]
    fn deadlock_detection() {
        let mut stg = Stg::new("dead");
        let a = stg.add_signal("a", SignalKind::Input).unwrap();
        let t1 = stg.transition_for(a, Edge::Rise);
        let p = stg.add_place("start");
        stg.set_tokens(p, 1);
        stg.arc_from_place(p, t1);
        // t1 produces nothing: deadlock after firing.
        let options = ExploreOptions { forbid_deadlock: true, ..ExploreOptions::default() };
        let err = explore_with(&stg, &options).unwrap_err();
        assert!(matches!(err, StgError::Deadlock(_)), "got {err:?}");
        // Without the flag the deadlock state is simply present.
        let sg = explore(&stg).unwrap();
        assert_eq!(sg.deadlock_states().len(), 1);
    }

    #[test]
    fn silent_transitions_preserve_codes() {
        let mut stg = Stg::new("eps");
        let a = stg.add_signal("a", SignalKind::Input).unwrap();
        let ap = stg.transition_for(a, Edge::Rise);
        let am = stg.transition_for(a, Edge::Fall);
        let eps = stg.silent("eps");
        stg.arc(ap, eps);
        stg.arc(eps, am);
        stg.marked_arc(am, ap);
        let sg = explore(&stg).unwrap();
        assert_eq!(sg.state_count(), 3);
        // The ε arc connects two states with identical codes.
        let silent_arcs: Vec<_> = sg
            .states()
            .flat_map(|s| {
                sg.successors(s)
                    .iter()
                    .filter(|arc| arc.event.is_none())
                    .map(move |arc| (s, arc.to))
                    .collect::<Vec<_>>()
            })
            .collect();
        assert_eq!(silent_arcs.len(), 1);
        let (from, to) = silent_arcs[0];
        assert_eq!(sg.code(from), sg.code(to));
    }

    #[test]
    fn too_many_signals_rejected() {
        let mut stg = Stg::new("wide");
        for i in 0..65 {
            stg.add_signal(format!("s{i}"), SignalKind::Input).unwrap();
        }
        let err = explore(&stg).unwrap_err();
        assert_eq!(err, StgError::TooManySignals(65));
    }
}
