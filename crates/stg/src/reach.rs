//! Explicit reachability analysis: STG → [`StateGraph`].
//!
//! The analyser plays the token game from the initial marking, assigns each
//! reached marking a binary signal code, verifies *consistency* (edges of
//! each signal strictly alternate along every path) and *safeness* (the net
//! stays within a configurable token bound), and produces the state graph
//! consumed by logic synthesis.
//!
//! ## Hot-path layout
//!
//! Exploration never touches heap-allocated token vectors: markings are
//! bit-packed into inline words ([`crate::marking::PackedMarking`]) under
//! a per-net [`MarkingLayout`] and interned in a [`MarkingArena`], whose
//! FxHash-keyed table maps packed words to dense 4-byte ids. The BFS
//! queue is implicit (ids are assigned in discovery order, so the work
//! list is just the next unprocessed id) and arcs accumulate directly
//! into the compressed-sparse-row buffers the [`StateGraph`] keeps, so
//! for a safe net with ≤ 64 places a visited state costs a `u64` copy,
//! one hash and no allocation.
//!
//! ## Sharded (multi-core) exploration
//!
//! With [`ExploreOptions::threads`] > 1 the walk runs **sharded**: the
//! marking space is partitioned by hash ([`PackedMarking::shard`]) over
//! N workers under `std::thread::scope` (no external thread-pool
//! dependency). Each worker owns the interning arena, code table and
//! CSR rows of its shard; the walk is level-synchronous, with every
//! round exchanging cross-shard successors through per-(sender,
//! receiver) mailbox buffers. A final serial **renumbering pass**
//! replays the global breadth-first discovery order over the cheap
//! shard-local graph (integer pairs, no marking hashing) and emits rows
//! through the shared [`CsrBuilder`], so the resulting [`StateGraph`]
//! is **bit-identical to the serial one** — state ids, arc order,
//! codes and markings all match, which the `csr_order` pin and the
//! `parallel_determinism` property test both enforce. See
//! [`crate::engine`]'s module docs for the full protocol.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Barrier, Mutex};

use crate::budget::Budget;
use crate::error::StgError;
use crate::marking::{MarkingArena, MarkingId, MarkingLayout, PackedMarking};
use crate::par::effective_threads;
use crate::petri::PlaceId;
use crate::signal::{SignalEvent, SignalId};
use crate::state_graph::{CsrBuilder, StateArc, StateGraph, StateId};
use crate::stg::{Stg, TransitionLabel};

/// Tuning knobs for [`explore_with`].
#[derive(Debug, Clone)]
pub struct ExploreOptions {
    /// Maximum number of states before aborting with
    /// [`StgError::StateLimitExceeded`].
    pub state_limit: usize,
    /// Per-place token bound (1 = safe net). `None` disables the check.
    pub bound: Option<u16>,
    /// When `true`, a reachable deadlock is an error.
    pub forbid_deadlock: bool,
    /// Worker count for the sharded breadth-first walk: `1` (the
    /// default) runs the serial fast path, `0` resolves to one worker
    /// per available core, anything else is taken literally. The
    /// result is bit-identical at every thread count.
    pub threads: usize,
    /// Soft resource budget, polled at round granularity by every
    /// execution path. Unlimited by default; unlike `state_limit`,
    /// blowing it yields *degradable* errors (see [`crate::engine`]).
    pub budget: Budget,
    /// BDD variable order for the symbolic paths
    /// ([`crate::symbolic::VarOrder`]); ignored by explicit
    /// exploration. [`crate::symbolic::VarOrder::Sift`] turns on
    /// mid-fixpoint dynamic reordering governed by the two knobs
    /// below.
    pub var_order: crate::symbolic::VarOrder,
    /// Growth factor arming the dynamic-reorder trigger: a sifting
    /// pass runs when the manager's node count exceeds this multiple
    /// of its size at the previous check. Only read when `var_order`
    /// is dynamic.
    pub reorder_growth: f64,
    /// Node count below which the dynamic-reorder trigger never fires
    /// (sifting a tiny manager costs more than it can save).
    pub reorder_min_nodes: usize,
}

impl Default for ExploreOptions {
    fn default() -> Self {
        ExploreOptions {
            state_limit: 1 << 20,
            bound: Some(1),
            forbid_deadlock: false,
            threads: 1,
            budget: Budget::default(),
            var_order: crate::symbolic::VarOrder::Auto,
            reorder_growth: 2.0,
            reorder_min_nodes: 1 << 13,
        }
    }
}

/// Per-round soft-budget poll shared by the explicit walks: injected
/// faults first (compiled out unless the `fault-injection` feature is
/// on), then cancellation/deadline, then the soft state budget. Runs
/// once per BFS layer, never per state, so the poll cost (one atomic
/// load; a clock read only when a deadline is set) is invisible.
fn round_budget_check(budget: &Budget, states: usize, round: usize) -> Option<StgError> {
    if let Some(error) = crate::faults::explicit_round_fault(round) {
        return Some(error);
    }
    if budget.cancelled() {
        return Some(StgError::Cancelled);
    }
    if budget.states_exhausted(states) {
        return Some(StgError::StateBudgetExceeded { states });
    }
    None
}

/// Explores `stg` with default options (2^20-state limit, safe-net check).
///
/// # Errors
///
/// Propagates every failure mode of [`explore_with`].
///
/// # Examples
///
/// ```
/// use rt_stg::{models, explore};
///
/// # fn main() -> Result<(), rt_stg::StgError> {
/// let sg = explore(&models::fifo_stg())?;
/// assert!(sg.is_strongly_connected());
/// # Ok(())
/// # }
/// ```
pub fn explore(stg: &Stg) -> Result<StateGraph, StgError> {
    explore_with(stg, &ExploreOptions::default())
}

/// Explores `stg` under explicit [`ExploreOptions`].
///
/// # Errors
///
/// * [`StgError::TooManySignals`] — more than 64 signals.
/// * [`StgError::StateLimitExceeded`] — exploration exceeded the limit.
/// * [`StgError::Unbounded`] — a place exceeded the token bound.
/// * [`StgError::Inconsistent`] — some signal's edges do not alternate.
/// * [`StgError::Deadlock`] — with `forbid_deadlock`, a marking enabling
///   nothing was reached.
/// * [`StgError::StateBudgetExceeded`] / [`StgError::Cancelled`] — the
///   soft [`Budget`] was blown or the request was cancelled; checked
///   once per BFS round, so the walk stops within one layer.
/// * [`StgError::WorkerPanicked`] — a sharded-walk worker panicked (the
///   panic is isolated; sibling shards drain cleanly).
pub fn explore_with(stg: &Stg, options: &ExploreOptions) -> Result<StateGraph, StgError> {
    if stg.signal_count() > 64 {
        return Err(StgError::TooManySignals(stg.signal_count()));
    }
    let threads = effective_threads(options.threads);
    if threads > 1 {
        return explore_sharded(stg, options, threads);
    }
    let net = stg.net();
    let initial_marking = stg.initial_marking();
    let layout = marking_layout(stg, options)?;
    let initial_code = infer_initial_code(stg, options, &layout)?;

    // Start small: tables grow geometrically, so large explorations pay
    // a handful of rehashes while small ones (the common case in the
    // synthesis flow) avoid faulting in kilobytes they never touch.
    let mut arena = MarkingArena::with_capacity(layout, 64);
    let mut codes: Vec<u64> = Vec::with_capacity(64);
    let mut builder = CsrBuilder::with_capacity(64, 256);
    // Reused firing scratch: keeps the hot loop allocation-free even for
    // spilled (boxed) layouts.
    let mut scratch = PackedMarking::zero(&layout);

    arena.intern(PackedMarking::pack(&layout, &initial_marking));
    codes.push(initial_code);

    // Ids are handed out in discovery order and the BFS queue is FIFO, so
    // the work list is simply "the next id not yet processed" — no queue.
    // Rows therefore complete in id order, exactly the CsrBuilder
    // contract.
    let mut state = 0usize;
    // Round (= BFS layer) boundaries, tracked for the soft-budget poll:
    // `layer_end` is the first id of the next layer.
    let mut round = 0usize;
    let mut layer_end = arena.len();
    if let Some(error) = round_budget_check(&options.budget, arena.len(), round) {
        return Err(error);
    }
    while state < arena.len() {
        if state == layer_end {
            round += 1;
            layer_end = arena.len();
            if let Some(error) = round_budget_check(&options.budget, arena.len(), round) {
                return Err(error);
            }
        }
        builder.start_row();
        let marking = arena.resolve(MarkingId(state as u32)).clone();
        let code = codes[state];
        let mut any_enabled = false;
        for transition in net.transitions() {
            if !net.is_enabled_packed(transition, &marking, &layout) {
                continue;
            }
            any_enabled = true;
            net.fire_packed_into(transition, &marking, &layout, options.bound, &mut scratch)
                .map_err(|place| StgError::Unbounded {
                    place: net.place_name(place).to_string(),
                    bound: u32::from(options.bound.unwrap_or(u16::MAX)),
                })?;
            let (event, next_code) = match stg.label(transition) {
                TransitionLabel::Silent => (None, code),
                TransitionLabel::Event(ev) => {
                    let current = code >> ev.signal.index() & 1 == 1;
                    if current != ev.edge.source_value() {
                        return Err(StgError::Inconsistent {
                            signal: stg.signal_name(ev.signal).to_string(),
                            detail: format!(
                                "{} fires in state {} where {} is already {}",
                                stg.event_name(ev),
                                marking.unpack(&layout),
                                stg.signal_name(ev.signal),
                                u8::from(current)
                            ),
                        });
                    }
                    let next = if ev.edge.target_value() {
                        code | 1 << ev.signal.index()
                    } else {
                        code & !(1 << ev.signal.index())
                    };
                    (Some(ev), next)
                }
            };
            let (next_id, fresh) = arena.intern_ref(&scratch);
            if fresh {
                if arena.len() > options.state_limit {
                    return Err(StgError::StateLimitExceeded(options.state_limit));
                }
                codes.push(next_code);
            } else if codes[next_id.index()] != next_code {
                // The same marking was reached with two different signal
                // codes: the STG is not consistent.
                return Err(code_conflict(
                    stg,
                    &layout,
                    arena.resolve(next_id),
                    codes[next_id.index()],
                    next_code,
                ));
            }
            builder.push_arc(StateArc {
                event,
                to: StateId(next_id.0),
            });
        }
        if !any_enabled && options.forbid_deadlock {
            return Err(StgError::Deadlock(format!("{}", marking.unpack(&layout))));
        }
        state += 1;
    }
    let (offsets, arcs) = builder.finish();

    let signal_names = stg
        .signals()
        .map(|s| stg.signal_name(s).to_string())
        .collect();
    let signal_kinds = stg.signals().map(|s| stg.signal_kind(s)).collect();
    Ok(StateGraph::from_csr_parts(
        signal_names,
        signal_kinds,
        codes,
        offsets,
        arcs,
        arena.into_markings(),
        layout,
        StateId(0),
    ))
}

/// Result of a counting-only explicit walk ([`count_markings_with`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ExplicitCount {
    /// Number of distinct reachable markings.
    pub markings: u64,
    /// Breadth-first depth at which the walk converged (number of
    /// frontier layers, counting the initial marking as layer 1).
    pub iterations: usize,
}

/// Counts the reachable markings of `stg` without building a state
/// graph: the packed BFS of [`explore_with`] minus codes, arcs and the
/// consistency machinery. This is the explicit backend of
/// [`crate::engine::ReachEngine`]'s set-level queries.
///
/// Because no binary codes are assigned, the walk has **no 64-signal
/// cap** and performs **no consistency check** — it answers "how many
/// markings" for any safe net the packed layouts can represent, which
/// is what the symbolic backend answers too.
///
/// # Errors
///
/// * [`StgError::StateLimitExceeded`] — exploration exceeded the limit.
/// * [`StgError::Unbounded`] — a place exceeded the token bound.
/// * [`StgError::Deadlock`] — with `forbid_deadlock`, a marking enabling
///   nothing was reached.
/// * [`StgError::StateBudgetExceeded`] / [`StgError::Cancelled`] /
///   [`StgError::WorkerPanicked`] — as in [`explore_with`].
pub fn count_markings_with(stg: &Stg, options: &ExploreOptions) -> Result<ExplicitCount, StgError> {
    let threads = effective_threads(options.threads);
    if threads > 1 {
        let layout = marking_layout(stg, options)?;
        let (shards, layers) = parallel_walk(stg, options, &layout, threads, false, 0)?;
        let markings: usize = shards.iter().map(|s| s.markings.len()).sum();
        return Ok(ExplicitCount {
            markings: markings as u64,
            iterations: 1 + layers,
        });
    }
    let net = stg.net();
    let layout = marking_layout(stg, options)?;
    let mut arena = MarkingArena::with_capacity(layout, 64);
    let mut scratch = PackedMarking::zero(&layout);
    arena.intern(PackedMarking::pack(&layout, &stg.initial_marking()));

    let mut state = 0usize;
    // Depth tracking: `layer_end` is the first id of the *next* BFS
    // layer; ids are dense and in discovery order, so layers are just
    // index ranges. The 0-based round index for the budget poll is
    // `iterations - 1`.
    let mut iterations = 1usize;
    let mut layer_end = arena.len();
    if let Some(error) = round_budget_check(&options.budget, arena.len(), 0) {
        return Err(error);
    }
    while state < arena.len() {
        if state == layer_end {
            iterations += 1;
            layer_end = arena.len();
            if let Some(error) = round_budget_check(&options.budget, arena.len(), iterations - 1) {
                return Err(error);
            }
        }
        let marking = arena.resolve(MarkingId(state as u32)).clone();
        let mut any_enabled = false;
        for transition in net.transitions() {
            if !net.is_enabled_packed(transition, &marking, &layout) {
                continue;
            }
            any_enabled = true;
            net.fire_packed_into(transition, &marking, &layout, options.bound, &mut scratch)
                .map_err(|place| StgError::Unbounded {
                    place: net.place_name(place).to_string(),
                    bound: u32::from(options.bound.unwrap_or(u16::MAX)),
                })?;
            let (_, fresh) = arena.intern_ref(&scratch);
            if fresh && arena.len() > options.state_limit {
                return Err(StgError::StateLimitExceeded(options.state_limit));
            }
        }
        if !any_enabled && options.forbid_deadlock {
            return Err(StgError::Deadlock(format!("{}", marking.unpack(&layout))));
        }
        state += 1;
    }
    Ok(ExplicitCount {
        markings: arena.len() as u64,
        iterations,
    })
}

/// Arc-target placeholder used by a worker while the owning shard has
/// not yet replied with the successor's shard-local id. A real target
/// packs `(shard << 32) | local`, and a shard id of `u32::MAX` cannot
/// occur (shard counts are small), so the all-ones word is free.
const PENDING_TARGET: u64 = u64::MAX;

#[inline]
fn pack_target(shard: usize, local: u32) -> u64 {
    ((shard as u64) << 32) | u64::from(local)
}

/// Cross-shard mailbox grid: `mailboxes[receiver][sender]` carries the
/// `(marking, code)` messages of one round.
type Mailboxes = Vec<Vec<Mutex<Vec<(PackedMarking, u64)>>>>;

/// Poison-tolerant lock for the walk's per-round mailbox/reply/failure
/// cells. A worker that panicked while holding one of these (allocation
/// failure is about the only way) poisons the mutex, but the protected
/// data is per-round scratch that every error path discards wholesale —
/// so the poison flag carries no information and clearing it keeps the
/// drain deterministic instead of cascading panics through healthy
/// workers.
fn lock_clean<T>(mutex: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    mutex
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
}

/// Per-shard result of [`parallel_walk`]: the shard's interned markings
/// and (in graph-building mode) codes plus CSR rows whose targets are
/// packed `(shard, local)` pairs.
struct ShardOutput {
    markings: Vec<PackedMarking>,
    codes: Vec<u64>,
    offsets: Vec<u32>,
    events: Vec<Option<SignalEvent>>,
    targets: Vec<u64>,
}

/// The sharded level-synchronous breadth-first walk shared by
/// [`explore_with`] (graph-building mode) and [`count_markings_with`]
/// (counting mode). See the module docs for the protocol; in short,
/// each round runs three barrier-separated phases on every worker:
///
/// 1. **expand** — fire all transitions of the shard's current
///    frontier; successors hashing into this shard are interned
///    immediately, the rest go into one outbox per owning shard;
/// 2. **intern** — adopt incoming markings from every other shard's
///    outbox (in sender order, so shard-local ids are deterministic)
///    and reply with the assigned shard-local ids;
/// 3. **resolve** — patch the placeholder arc targets with the replies
///    and agree on termination (no shard interned anything fresh) or
///    abort (any worker hit an error, or the global state count blew
///    the limit).
///
/// Returns the shard outputs plus the number of rounds that interned
/// at least one fresh marking (`= BFS layers - 1`).
fn parallel_walk(
    stg: &Stg,
    options: &ExploreOptions,
    layout: &MarkingLayout,
    threads: usize,
    build: bool,
    initial_code: u64,
) -> Result<(Vec<ShardOutput>, usize), StgError> {
    let net = stg.net();
    let initial = PackedMarking::pack(layout, &stg.initial_marking());
    let initial_owner = initial.shard(threads);

    // mailboxes[receiver][sender] carry (marking, code) messages from
    // the expand phase to the intern phase; replies[sender][receiver]
    // carry the assigned shard-local ids back. Each cell is touched by
    // exactly one writer and one reader per round, on opposite sides of
    // a barrier — the mutexes only make that contract safe, they are
    // never contended.
    let mailboxes: Mailboxes = (0..threads)
        .map(|_| (0..threads).map(|_| Mutex::new(Vec::new())).collect())
        .collect();
    let replies: Vec<Vec<Mutex<Vec<u32>>>> = (0..threads)
        .map(|_| (0..threads).map(|_| Mutex::new(Vec::new())).collect())
        .collect();
    let fresh: Vec<AtomicUsize> = (0..threads).map(|_| AtomicUsize::new(0)).collect();
    let sizes: Vec<AtomicUsize> = (0..threads).map(|_| AtomicUsize::new(0)).collect();
    // Per-worker error flags, republished every round before the second
    // barrier. Termination decisions read ONLY these per-round arrays:
    // every worker then derives the same verdict in the same round,
    // which is what keeps the barrier counts aligned. (A plain global
    // abort flag deadlocks here: a worker racing ahead into round k+1
    // could set it while a straggler is still deciding round k, making
    // the straggler leave one round early and the setter wait forever.)
    let errors: Vec<AtomicUsize> = (0..threads).map(|_| AtomicUsize::new(0)).collect();
    let barrier = Barrier::new(threads);
    // Work-skip hint only — never used for control-flow decisions (see
    // above). Lets healthy workers stop expanding a doomed round early.
    //
    // Panics cannot park peers on the barrier either: the expand and
    // intern phase bodies run under `catch_unwind`, so a panicking
    // worker reports `StgError::WorkerPanicked` through the same
    // per-round error protocol as any anticipated failure and keeps
    // hitting its barriers while the round drains
    // (`crates/stg/tests/fault_injection.rs` pins this).
    let abort_hint = AtomicBool::new(false);
    // One failure slot per worker: each worker only ever writes its
    // own, and the post-join reduction picks the lowest worker index,
    // so the reported error is deterministic for a given thread count
    // even when several shards fail in the same round.
    let failures: Vec<Mutex<Option<StgError>>> = (0..threads).map(|_| Mutex::new(None)).collect();
    let fail = |me: usize, error: StgError| {
        let mut slot = lock_clean(&failures[me]);
        slot.get_or_insert(error);
        abort_hint.store(true, Ordering::SeqCst);
    };

    let worker = |me: usize| -> (ShardOutput, usize) {
        let mut arena = MarkingArena::with_capacity(*layout, 64);
        let mut codes: Vec<u64> = Vec::new();
        let mut offsets: Vec<u32> = Vec::new();
        let mut events: Vec<Option<SignalEvent>> = Vec::new();
        let mut targets: Vec<u64> = Vec::new();
        // (arc index, owner shard, message index): placeholders to patch
        // once the owner replies with shard-local ids.
        let mut pending: Vec<(usize, u32, u32)> = Vec::new();
        let mut outbox: Vec<Vec<(PackedMarking, u64)>> = vec![Vec::new(); threads];
        let mut scratch = PackedMarking::zero(layout);
        let mut processed = 0usize;
        let mut layers = 0usize;
        let mut my_error: Option<StgError> = None;
        let mut errored = false;

        if me == initial_owner {
            arena.intern(initial.clone());
            if build {
                codes.push(initial_code);
            }
        }

        let mut round = 0usize;
        loop {
            // ---- Phase 1: expand this round's frontier ----
            let frontier_end = arena.len();
            let mut round_fresh = 0usize;
            if !errored && !abort_hint.load(Ordering::Relaxed) {
                // Per-round budget poll. Worker 0 additionally polls the
                // injected-fault hook (one designated poller keeps shot
                // consumption deterministic); a triggered check becomes a
                // plain per-worker error, so the normal round protocol
                // stops every shard within this round.
                if me == 0 {
                    my_error = crate::faults::explicit_round_fault(round);
                }
                if my_error.is_none() && options.budget.cancelled() {
                    my_error = Some(StgError::Cancelled);
                }
            }
            if !errored && my_error.is_none() && !abort_hint.load(Ordering::Relaxed) {
                // The expand body runs under `catch_unwind`: a panic is
                // converted into `WorkerPanicked` and reported through
                // the per-round error protocol, so sibling workers drain
                // cleanly instead of parking on the barrier forever. The
                // shard-local structures may be mid-update after a
                // panic, but every error path discards them wholesale.
                let unwound = catch_unwind(AssertUnwindSafe(|| {
                    if crate::faults::worker_panic(me, round) {
                        panic!("injected worker panic (fault-injection test hook)");
                    }
                    'expand: while processed < frontier_end {
                        let state = processed;
                        processed += 1;
                        if build {
                            offsets.push(targets.len() as u32);
                        }
                        let marking = arena.resolve(MarkingId(state as u32)).clone();
                        let code = if build { codes[state] } else { 0 };
                        let mut any_enabled = false;
                        for transition in net.transitions() {
                            if !net.is_enabled_packed(transition, &marking, layout) {
                                continue;
                            }
                            any_enabled = true;
                            if let Err(place) = net.fire_packed_into(
                                transition,
                                &marking,
                                layout,
                                options.bound,
                                &mut scratch,
                            ) {
                                my_error = Some(StgError::Unbounded {
                                    place: net.place_name(place).to_string(),
                                    bound: u32::from(options.bound.unwrap_or(u16::MAX)),
                                });
                                break 'expand;
                            }
                            let (event, next_code) = if build {
                                match stg.label(transition) {
                                    TransitionLabel::Silent => (None, code),
                                    TransitionLabel::Event(ev) => {
                                        let current = code >> ev.signal.index() & 1 == 1;
                                        if current != ev.edge.source_value() {
                                            my_error = Some(StgError::Inconsistent {
                                                signal: stg.signal_name(ev.signal).to_string(),
                                                detail: format!(
                                                    "{} fires in state {} where {} is already {}",
                                                    stg.event_name(ev),
                                                    marking.unpack(layout),
                                                    stg.signal_name(ev.signal),
                                                    u8::from(current)
                                                ),
                                            });
                                            break 'expand;
                                        }
                                        let next = if ev.edge.target_value() {
                                            code | 1 << ev.signal.index()
                                        } else {
                                            code & !(1 << ev.signal.index())
                                        };
                                        (Some(ev), next)
                                    }
                                }
                            } else {
                                (None, 0)
                            };
                            let owner = scratch.shard(threads);
                            if owner == me {
                                let (next_id, is_fresh) = arena.intern_ref(&scratch);
                                if is_fresh {
                                    round_fresh += 1;
                                    if build {
                                        codes.push(next_code);
                                    }
                                    // Early per-shard guard: one shard alone
                                    // exceeding the *global* limit already
                                    // proves the walk is over budget, so bail
                                    // before allocating the rest of the layer.
                                    // (The cross-shard total is still checked
                                    // every round in phase 3.)
                                    if arena.len() > options.state_limit {
                                        my_error =
                                            Some(StgError::StateLimitExceeded(options.state_limit));
                                        break 'expand;
                                    }
                                } else if build && codes[next_id.index()] != next_code {
                                    my_error = Some(code_conflict(
                                        stg,
                                        layout,
                                        arena.resolve(next_id),
                                        codes[next_id.index()],
                                        next_code,
                                    ));
                                    break 'expand;
                                }
                                if build {
                                    events.push(event);
                                    targets.push(pack_target(me, next_id.0));
                                }
                            } else {
                                if build {
                                    pending.push((
                                        targets.len(),
                                        owner as u32,
                                        outbox[owner].len() as u32,
                                    ));
                                    events.push(event);
                                    targets.push(PENDING_TARGET);
                                }
                                outbox[owner].push((scratch.clone(), next_code));
                            }
                        }
                        if !any_enabled && options.forbid_deadlock {
                            my_error =
                                Some(StgError::Deadlock(format!("{}", marking.unpack(layout))));
                            break 'expand;
                        }
                    }
                }));
                if unwound.is_err() {
                    my_error = Some(StgError::WorkerPanicked);
                }
            }
            if let Some(error) = my_error.take() {
                errored = true;
                fail(me, error);
            }
            for (owner, buffer) in outbox.iter_mut().enumerate() {
                if owner != me && !buffer.is_empty() {
                    *lock_clean(&mailboxes[owner][me]) = std::mem::take(buffer);
                }
            }
            barrier.wait();

            // ---- Phase 2: intern incoming cross-shard successors ----
            if !errored {
                // Same panic isolation as the expand phase.
                let unwound = catch_unwind(AssertUnwindSafe(|| {
                    'senders: for sender in 0..threads {
                        if sender == me {
                            continue;
                        }
                        let messages = std::mem::take(&mut *lock_clean(&mailboxes[me][sender]));
                        if messages.is_empty() {
                            continue;
                        }
                        let mut reply = Vec::with_capacity(if build { messages.len() } else { 0 });
                        for (marking, message_code) in &messages {
                            let (id, is_fresh) = arena.intern_ref(marking);
                            if is_fresh {
                                round_fresh += 1;
                                if build {
                                    codes.push(*message_code);
                                }
                                if arena.len() > options.state_limit {
                                    my_error =
                                        Some(StgError::StateLimitExceeded(options.state_limit));
                                    break 'senders;
                                }
                            } else if build && codes[id.index()] != *message_code {
                                my_error = Some(code_conflict(
                                    stg,
                                    layout,
                                    arena.resolve(id),
                                    codes[id.index()],
                                    *message_code,
                                ));
                                break 'senders;
                            }
                            if build {
                                reply.push(id.0);
                            }
                        }
                        if build {
                            *lock_clean(&replies[sender][me]) = reply;
                        }
                    }
                }));
                if unwound.is_err() {
                    my_error = Some(StgError::WorkerPanicked);
                }
                if let Some(error) = my_error.take() {
                    errored = true;
                    fail(me, error);
                }
            }
            errors[me].store(usize::from(errored), Ordering::SeqCst);
            fresh[me].store(round_fresh, Ordering::SeqCst);
            sizes[me].store(arena.len(), Ordering::SeqCst);
            barrier.wait();

            // ---- Phase 3: resolve placeholders, agree on termination ----
            // Every input to these decisions was published before the
            // barrier above, so all workers reach the same verdict in
            // the same round (see the `errors` comment).
            if errors
                .iter()
                .map(|e| e.load(Ordering::SeqCst))
                .sum::<usize>()
                > 0
            {
                break;
            }
            if build && !pending.is_empty() {
                let incoming: Vec<Vec<u32>> = (0..threads)
                    .map(|owner| {
                        if owner == me {
                            Vec::new()
                        } else {
                            std::mem::take(&mut *lock_clean(&replies[me][owner]))
                        }
                    })
                    .collect();
                for (arc, owner, message) in pending.drain(..) {
                    targets[arc] =
                        pack_target(owner as usize, incoming[owner as usize][message as usize]);
                }
            }
            let total: usize = sizes.iter().map(|s| s.load(Ordering::SeqCst)).sum();
            let fresh_total: usize = fresh.iter().map(|f| f.load(Ordering::SeqCst)).sum();
            if total > options.state_limit {
                fail(me, StgError::StateLimitExceeded(options.state_limit));
                break;
            }
            // Soft budget: every worker computes the same total from the
            // same published sizes, so all agree in the same round.
            if options.budget.states_exhausted(total) {
                fail(me, StgError::StateBudgetExceeded { states: total });
                break;
            }
            if fresh_total == 0 {
                break;
            }
            layers += 1;
            round += 1;
        }

        if build {
            offsets.push(targets.len() as u32);
        }
        (
            ShardOutput {
                markings: arena.into_markings(),
                codes,
                offsets,
                events,
                targets,
            },
            layers,
        )
    };

    let results: Vec<(ShardOutput, usize)> = std::thread::scope(|scope| {
        let worker = &worker;
        let handles: Vec<_> = (0..threads)
            .map(|me| scope.spawn(move || worker(me)))
            .collect();
        handles
            .into_iter()
            .map(|handle| handle.join().expect("shard worker panicked"))
            .collect()
    });

    for slot in &failures {
        if let Some(error) = lock_clean(slot).take() {
            return Err(error);
        }
    }
    let layers = results[0].1;
    Ok((
        results.into_iter().map(|(shard, _)| shard).collect(),
        layers,
    ))
}

/// Two arrival paths assigned the same marking different signal codes:
/// the STG is not consistent. Mirrors the serial analyser's diagnostic.
fn code_conflict(
    stg: &Stg,
    layout: &MarkingLayout,
    marking: &PackedMarking,
    existing: u64,
    incoming: u64,
) -> StgError {
    let bit = (existing ^ incoming).trailing_zeros();
    StgError::Inconsistent {
        signal: stg.signal_name(SignalId(bit)).to_string(),
        detail: format!(
            "marking {} reached with codes {existing:b} and {incoming:b}",
            marking.unpack(layout)
        ),
    }
}

/// Sharded-mode [`explore_with`]: runs [`parallel_walk`] in
/// graph-building mode, then renumbers the shard-local graph into the
/// exact serial breadth-first order (see the module docs) and emits the
/// [`StateGraph`] through the shared [`CsrBuilder`].
fn explore_sharded(
    stg: &Stg,
    options: &ExploreOptions,
    threads: usize,
) -> Result<StateGraph, StgError> {
    let layout = marking_layout(stg, options)?;
    let initial_code = infer_initial_code(stg, options, &layout)?;
    let initial_owner = PackedMarking::pack(&layout, &stg.initial_marking()).shard(threads);
    let (mut shards, _) = parallel_walk(stg, options, &layout, threads, true, initial_code)?;

    // Renumbering pass: replay the global FIFO discovery order over the
    // shard-local graph. States are visited in serial-id order and each
    // row was recorded in transition order, so fresh successors are
    // numbered exactly as the serial analyser numbers them; the output
    // is bit-identical to the serial path. This pass touches only dense
    // integer pairs — no marking is hashed or compared again.
    let total: usize = shards.iter().map(|s| s.markings.len()).sum();
    let total_arcs: usize = shards.iter().map(|s| s.targets.len()).sum();
    let mut serial_ids: Vec<Vec<u32>> = shards
        .iter()
        .map(|s| vec![u32::MAX; s.markings.len()])
        .collect();
    let mut order: Vec<(u32, u32)> = Vec::with_capacity(total);
    let mut builder = CsrBuilder::with_capacity(total, total_arcs);
    let mut codes = Vec::with_capacity(total);
    let mut markings = Vec::with_capacity(total);
    serial_ids[initial_owner][0] = 0;
    order.push((initial_owner as u32, 0));
    let mut next = 0usize;
    while next < order.len() {
        let (shard_id, local) = order[next];
        next += 1;
        let local = local as usize;
        let moved_marking = std::mem::replace(
            &mut shards[shard_id as usize].markings[local],
            PackedMarking::W1(0),
        );
        let shard = &shards[shard_id as usize];
        builder.start_row();
        codes.push(shard.codes[local]);
        markings.push(moved_marking);
        let row = shard.offsets[local] as usize..shard.offsets[local + 1] as usize;
        for arc in row {
            let target = shard.targets[arc];
            debug_assert_ne!(target, PENDING_TARGET, "unresolved cross-shard arc");
            let (to_shard, to_local) = ((target >> 32) as usize, target as u32 as usize);
            let assigned = serial_ids[to_shard][to_local];
            let to = if assigned == u32::MAX {
                let fresh_id = order.len() as u32;
                serial_ids[to_shard][to_local] = fresh_id;
                order.push((to_shard as u32, to_local as u32));
                fresh_id
            } else {
                assigned
            };
            builder.push_arc(StateArc {
                event: shard.events[arc],
                to: StateId(to),
            });
        }
    }
    let (offsets, arcs) = builder.finish();

    let signal_names = stg
        .signals()
        .map(|s| stg.signal_name(s).to_string())
        .collect();
    let signal_kinds = stg.signals().map(|s| stg.signal_kind(s)).collect();
    Ok(StateGraph::from_csr_parts(
        signal_names,
        signal_kinds,
        codes,
        offsets,
        arcs,
        markings,
        layout,
        StateId(0),
    ))
}

/// Builds the packing layout for exploring `stg` under `options`, and
/// up-front rejects an initial marking that already violates the bound
/// (the packed fields are sized for `bound`, so such a marking could not
/// even be represented).
fn marking_layout(stg: &Stg, options: &ExploreOptions) -> Result<MarkingLayout, StgError> {
    let net = stg.net();
    let initial = stg.initial_marking();
    if let Some(bound) = options.bound {
        for place in net.places() {
            if initial.tokens(place) > bound {
                return Err(StgError::Unbounded {
                    place: net.place_name(place).to_string(),
                    bound: u32::from(bound),
                });
            }
        }
    }
    Ok(MarkingLayout::new(net.place_count(), options.bound))
}

/// Determines the initial binary code.
///
/// Explicit values set with [`Stg::set_initial_value`] win; remaining
/// signals are inferred from the *first edge* of the signal encountered in a
/// breadth-first sweep of the token game (a first rise ⇒ initially 0, a
/// first fall ⇒ initially 1). Signals that never transition default to 0.
///
/// The visited set is the interning arena itself (a marking is "seen"
/// exactly when it is already interned), replacing the historical
/// `HashMap<Marking, ()>`-as-a-set over heap token vectors.
///
/// `pub(crate)` because the symbolic CSC detector
/// ([`crate::symbolic::csc`]) seeds its signal-code variables from the
/// same inference, so both analysers agree on the initial code by
/// construction.
pub(crate) fn infer_initial_code(
    stg: &Stg,
    options: &ExploreOptions,
    layout: &MarkingLayout,
) -> Result<u64, StgError> {
    let mut value: Vec<Option<bool>> = (0..stg.signal_count())
        .map(|i| stg.initial_value(SignalId(i as u32)))
        .collect();
    let mut unresolved = value.iter().filter(|v| v.is_none()).count();
    if unresolved == 0 {
        return Ok(pack_code(&value));
    }

    let net = stg.net();
    let mut arena = MarkingArena::with_capacity(*layout, 64);
    let mut scratch = PackedMarking::zero(layout);
    arena.intern(PackedMarking::pack(layout, &stg.initial_marking()));

    let mut state = 0usize;
    while state < arena.len() {
        if unresolved == 0 || arena.len() > options.state_limit {
            break;
        }
        let marking = arena.resolve(MarkingId(state as u32)).clone();
        for transition in net.transitions() {
            if !net.is_enabled_packed(transition, &marking, layout) {
                continue;
            }
            if let TransitionLabel::Event(ev) = stg.label(transition) {
                let slot = &mut value[ev.signal.index()];
                if slot.is_none() {
                    *slot = Some(ev.edge.source_value());
                    unresolved -= 1;
                }
            }
            net.fire_packed_into(transition, &marking, layout, options.bound, &mut scratch)
                .map_err(|place: PlaceId| StgError::Unbounded {
                    place: net.place_name(place).to_string(),
                    bound: u32::from(options.bound.unwrap_or(u16::MAX)),
                })?;
            arena.intern_ref(&scratch);
        }
        state += 1;
    }
    Ok(pack_code(&value))
}

fn pack_code(values: &[Option<bool>]) -> u64 {
    let mut code = 0u64;
    for (i, v) in values.iter().enumerate() {
        if v.unwrap_or(false) {
            code |= 1 << i;
        }
    }
    code
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::signal::{Edge, SignalKind};

    fn handshake() -> Stg {
        let mut stg = Stg::new("hs");
        let a = stg.add_signal("a", SignalKind::Input).unwrap();
        let b = stg.add_signal("b", SignalKind::Output).unwrap();
        let ap = stg.transition_for(a, Edge::Rise);
        let bp = stg.transition_for(b, Edge::Rise);
        let am = stg.transition_for(a, Edge::Fall);
        let bm = stg.transition_for(b, Edge::Fall);
        stg.arc(ap, bp);
        stg.arc(bp, am);
        stg.arc(am, bm);
        stg.marked_arc(bm, ap);
        stg
    }

    #[test]
    fn handshake_has_four_states() {
        let sg = explore(&handshake()).unwrap();
        assert_eq!(sg.state_count(), 4);
        assert_eq!(sg.arc_count(), 4);
        assert!(sg.is_strongly_connected());
        assert_eq!(sg.code(sg.initial()), 0);
    }

    #[test]
    fn initial_values_inferred_from_first_edges() {
        // b- fires first for b if we mark the b- arc instead: initial b = 1.
        let mut stg = Stg::new("inv");
        let a = stg.add_signal("a", SignalKind::Input).unwrap();
        let b = stg.add_signal("b", SignalKind::Output).unwrap();
        let ap = stg.transition_for(a, Edge::Rise);
        let bm = stg.transition_for(b, Edge::Fall);
        let am = stg.transition_for(a, Edge::Fall);
        let bp = stg.transition_for(b, Edge::Rise);
        stg.arc(ap, bm);
        stg.arc(bm, am);
        stg.arc(am, bp);
        stg.marked_arc(bp, ap);
        let sg = explore(&stg).unwrap();
        // Initial: a = 0 (a+ first), b = 1 (b- first).
        assert_eq!(sg.code(sg.initial()), 0b10);
    }

    #[test]
    fn explicit_initial_values_override_inference() {
        let mut stg = handshake();
        let a = stg.signal_by_name("a").unwrap();
        stg.set_initial_value(a, false);
        let sg = explore(&stg).unwrap();
        assert_eq!(sg.code(sg.initial()) & 1, 0);
    }

    #[test]
    fn inconsistent_stg_rejected() {
        // a+ followed by a+ again without a-.
        let mut stg = Stg::new("bad");
        let a = stg.add_signal("a", SignalKind::Input).unwrap();
        let t1 = stg.transition_for(a, Edge::Rise);
        let t2 = stg.transition_for(a, Edge::Rise);
        stg.arc(t1, t2); // a+ twice in a row: inconsistent on purpose
        let p = stg.add_place("start");
        stg.set_tokens(p, 1);
        stg.arc_from_place(p, t1);
        let err = explore(&stg).unwrap_err();
        assert!(matches!(err, StgError::Inconsistent { .. }), "got {err:?}");
    }

    #[test]
    fn unbounded_net_rejected_with_safe_bound() {
        // A transition that only produces tokens.
        let mut stg = Stg::new("pump");
        let a = stg.add_signal("a", SignalKind::Input).unwrap();
        let t1 = stg.transition_for(a, Edge::Rise);
        let t2 = stg.transition_for(a, Edge::Fall);
        let p_loop = stg.add_place("loop");
        stg.set_tokens(p_loop, 1);
        stg.arc_from_place(p_loop, t1);
        stg.arc_to_place(t1, p_loop); // self-loop keeps t1 live
        let sink = stg.add_place("sink");
        stg.arc_to_place(t1, sink); // accumulates tokens unboundedly
        stg.arc_from_place(sink, t2);
        stg.arc_to_place(t2, sink);
        stg.arc_to_place(t2, sink);
        let err = explore(&stg).unwrap_err();
        assert!(
            matches!(
                err,
                StgError::Unbounded { .. } | StgError::Inconsistent { .. }
            ),
            "got {err:?}"
        );
    }

    #[test]
    fn state_limit_enforced() {
        let stg = handshake();
        let options = ExploreOptions {
            state_limit: 2,
            ..ExploreOptions::default()
        };
        let err = explore_with(&stg, &options).unwrap_err();
        assert_eq!(err, StgError::StateLimitExceeded(2));
    }

    #[test]
    fn deadlock_detection() {
        let mut stg = Stg::new("dead");
        let a = stg.add_signal("a", SignalKind::Input).unwrap();
        let t1 = stg.transition_for(a, Edge::Rise);
        let p = stg.add_place("start");
        stg.set_tokens(p, 1);
        stg.arc_from_place(p, t1);
        // t1 produces nothing: deadlock after firing.
        let options = ExploreOptions {
            forbid_deadlock: true,
            ..ExploreOptions::default()
        };
        let err = explore_with(&stg, &options).unwrap_err();
        assert!(matches!(err, StgError::Deadlock(_)), "got {err:?}");
        // Without the flag the deadlock state is simply present.
        let sg = explore(&stg).unwrap();
        assert_eq!(sg.deadlock_states().len(), 1);
    }

    #[test]
    fn silent_transitions_preserve_codes() {
        let mut stg = Stg::new("eps");
        let a = stg.add_signal("a", SignalKind::Input).unwrap();
        let ap = stg.transition_for(a, Edge::Rise);
        let am = stg.transition_for(a, Edge::Fall);
        let eps = stg.silent("eps");
        stg.arc(ap, eps);
        stg.arc(eps, am);
        stg.marked_arc(am, ap);
        let sg = explore(&stg).unwrap();
        assert_eq!(sg.state_count(), 3);
        // The ε arc connects two states with identical codes.
        let silent_arcs: Vec<_> = sg
            .states()
            .flat_map(|s| {
                sg.successors(s)
                    .iter()
                    .filter(|arc| arc.event.is_none())
                    .map(move |arc| (s, arc.to))
                    .collect::<Vec<_>>()
            })
            .collect();
        assert_eq!(silent_arcs.len(), 1);
        let (from, to) = silent_arcs[0];
        assert_eq!(sg.code(from), sg.code(to));
    }

    #[test]
    fn sharded_exploration_is_bit_identical_to_serial() {
        for stg in [
            handshake(),
            crate::models::fifo_stg(),
            crate::models::fifo_stg_csc(),
            crate::models::ring_stg(10, 3),
        ] {
            let serial = explore(&stg).expect("serial explores");
            for threads in [2usize, 3, 8] {
                let options = ExploreOptions {
                    threads,
                    ..ExploreOptions::default()
                };
                let parallel = explore_with(&stg, &options)
                    .unwrap_or_else(|e| panic!("{} at {threads} threads: {e}", stg.name()));
                assert_eq!(parallel.state_count(), serial.state_count());
                assert_eq!(parallel.arc_count(), serial.arc_count());
                for state in serial.states() {
                    assert_eq!(parallel.code(state), serial.code(state), "{state}");
                    assert_eq!(
                        parallel.successors(state),
                        serial.successors(state),
                        "{state} row"
                    );
                    assert_eq!(
                        parallel.packed_marking(state),
                        serial.packed_marking(state),
                        "{state} marking"
                    );
                }
            }
        }
    }

    #[test]
    fn sharded_count_matches_serial_count() {
        for stg in [
            handshake(),
            crate::models::fifo_stg(),
            crate::models::ring_stg(8, 2),
        ] {
            let serial = count_markings_with(&stg, &ExploreOptions::default()).expect("counts");
            for threads in [2usize, 5] {
                let options = ExploreOptions {
                    threads,
                    ..ExploreOptions::default()
                };
                let parallel = count_markings_with(&stg, &options).expect("counts sharded");
                assert_eq!(parallel, serial, "{} at {threads} threads", stg.name());
            }
        }
    }

    #[test]
    fn sharded_errors_match_serial_semantics() {
        // State limit.
        let options = ExploreOptions {
            state_limit: 2,
            threads: 4,
            ..ExploreOptions::default()
        };
        assert_eq!(
            explore_with(&handshake(), &options).unwrap_err(),
            StgError::StateLimitExceeded(2)
        );
        // Inconsistency (a+ twice).
        let mut bad = Stg::new("bad");
        let a = bad
            .add_signal("a", crate::signal::SignalKind::Input)
            .unwrap();
        let t1 = bad.transition_for(a, Edge::Rise);
        let t2 = bad.transition_for(a, Edge::Rise);
        bad.arc(t1, t2);
        let p = bad.add_place("start");
        bad.set_tokens(p, 1);
        bad.arc_from_place(p, t1);
        let options = ExploreOptions {
            threads: 3,
            ..ExploreOptions::default()
        };
        assert!(matches!(
            explore_with(&bad, &options).unwrap_err(),
            StgError::Inconsistent { .. }
        ));
        // Deadlock.
        let mut dead = Stg::new("dead");
        let a = dead
            .add_signal("a", crate::signal::SignalKind::Input)
            .unwrap();
        let t1 = dead.transition_for(a, Edge::Rise);
        let p = dead.add_place("start");
        dead.set_tokens(p, 1);
        dead.arc_from_place(p, t1);
        let options = ExploreOptions {
            forbid_deadlock: true,
            threads: 2,
            ..ExploreOptions::default()
        };
        assert!(matches!(
            explore_with(&dead, &options).unwrap_err(),
            StgError::Deadlock(_)
        ));
    }

    #[test]
    fn too_many_signals_rejected() {
        let mut stg = Stg::new("wide");
        for i in 0..65 {
            stg.add_signal(format!("s{i}"), SignalKind::Input).unwrap();
        }
        let err = explore(&stg).unwrap_err();
        assert_eq!(err, StgError::TooManySignals(65));
    }
}
