//! Explicit reachability analysis: STG → [`StateGraph`].
//!
//! The analyser plays the token game from the initial marking, assigns each
//! reached marking a binary signal code, verifies *consistency* (edges of
//! each signal strictly alternate along every path) and *safeness* (the net
//! stays within a configurable token bound), and produces the state graph
//! consumed by logic synthesis.

use std::collections::{HashMap, VecDeque};

use crate::error::StgError;
use crate::petri::Marking;
use crate::signal::SignalId;
use crate::state_graph::{StateArc, StateGraph, StateId};
use crate::stg::{Stg, TransitionLabel};

/// Tuning knobs for [`explore_with`].
#[derive(Debug, Clone)]
pub struct ExploreOptions {
    /// Maximum number of states before aborting with
    /// [`StgError::StateLimitExceeded`].
    pub state_limit: usize,
    /// Per-place token bound (1 = safe net). `None` disables the check.
    pub bound: Option<u16>,
    /// When `true`, a reachable deadlock is an error.
    pub forbid_deadlock: bool,
}

impl Default for ExploreOptions {
    fn default() -> Self {
        ExploreOptions {
            state_limit: 1 << 20,
            bound: Some(1),
            forbid_deadlock: false,
        }
    }
}

/// Explores `stg` with default options (2^20-state limit, safe-net check).
///
/// # Errors
///
/// Propagates every failure mode of [`explore_with`].
///
/// # Examples
///
/// ```
/// use rt_stg::{models, explore};
///
/// # fn main() -> Result<(), rt_stg::StgError> {
/// let sg = explore(&models::fifo_stg())?;
/// assert!(sg.is_strongly_connected());
/// # Ok(())
/// # }
/// ```
pub fn explore(stg: &Stg) -> Result<StateGraph, StgError> {
    explore_with(stg, &ExploreOptions::default())
}

/// Explores `stg` under explicit [`ExploreOptions`].
///
/// # Errors
///
/// * [`StgError::TooManySignals`] — more than 64 signals.
/// * [`StgError::StateLimitExceeded`] — exploration exceeded the limit.
/// * [`StgError::Unbounded`] — a place exceeded the token bound.
/// * [`StgError::Inconsistent`] — some signal's edges do not alternate.
/// * [`StgError::Deadlock`] — with `forbid_deadlock`, a marking enabling
///   nothing was reached.
pub fn explore_with(stg: &Stg, options: &ExploreOptions) -> Result<StateGraph, StgError> {
    if stg.signal_count() > 64 {
        return Err(StgError::TooManySignals(stg.signal_count()));
    }
    let initial_code = infer_initial_code(stg, options)?;
    let net = stg.net();
    let initial_marking = stg.initial_marking();

    let mut index: HashMap<Marking, StateId> = HashMap::new();
    let mut codes: Vec<u64> = Vec::new();
    let mut markings: Vec<Marking> = Vec::new();
    let mut arcs: Vec<Vec<StateArc>> = Vec::new();
    let mut queue: VecDeque<StateId> = VecDeque::new();

    index.insert(initial_marking.clone(), StateId(0));
    codes.push(initial_code);
    markings.push(initial_marking);
    arcs.push(Vec::new());
    queue.push_back(StateId(0));

    while let Some(state) = queue.pop_front() {
        let marking = markings[state.index()].clone();
        let code = codes[state.index()];
        let enabled = net.enabled(&marking);
        if enabled.is_empty() && options.forbid_deadlock {
            return Err(StgError::Deadlock(format!("{marking}")));
        }
        for transition in enabled {
            let next_marking = net
                .fire(transition, &marking)
                .expect("enabled transition must fire");
            if let Some(bound) = options.bound {
                net.check_bound(&next_marking, bound)?;
            }
            let (event, next_code) = match stg.label(transition) {
                TransitionLabel::Silent => (None, code),
                TransitionLabel::Event(ev) => {
                    let current = code >> ev.signal.index() & 1 == 1;
                    if current != ev.edge.source_value() {
                        return Err(StgError::Inconsistent {
                            signal: stg.signal_name(ev.signal).to_string(),
                            detail: format!(
                                "{} fires in state {marking} where {} is already {}",
                                stg.event_name(ev),
                                stg.signal_name(ev.signal),
                                u8::from(current)
                            ),
                        });
                    }
                    let next = if ev.edge.target_value() {
                        code | 1 << ev.signal.index()
                    } else {
                        code & !(1 << ev.signal.index())
                    };
                    (Some(ev), next)
                }
            };
            let next_state = match index.get(&next_marking) {
                Some(&existing) => {
                    if codes[existing.index()] != next_code {
                        // The same marking was reached with two different
                        // signal codes: the STG is not consistent.
                        let bit = (codes[existing.index()] ^ next_code).trailing_zeros();
                        return Err(StgError::Inconsistent {
                            signal: stg.signal_name(SignalId(bit)).to_string(),
                            detail: format!(
                                "marking {next_marking} reached with codes {:b} and {:b}",
                                codes[existing.index()],
                                next_code
                            ),
                        });
                    }
                    existing
                }
                None => {
                    let id = StateId(codes.len() as u32);
                    if id.index() >= options.state_limit {
                        return Err(StgError::StateLimitExceeded(options.state_limit));
                    }
                    index.insert(next_marking.clone(), id);
                    codes.push(next_code);
                    markings.push(next_marking);
                    arcs.push(Vec::new());
                    queue.push_back(id);
                    id
                }
            };
            arcs[state.index()].push(StateArc { event, to: next_state });
        }
    }

    let signal_names = stg
        .signals()
        .map(|s| stg.signal_name(s).to_string())
        .collect();
    let signal_kinds = stg.signals().map(|s| stg.signal_kind(s)).collect();
    Ok(StateGraph::from_parts(
        signal_names,
        signal_kinds,
        codes,
        arcs,
        markings,
        StateId(0),
    ))
}

/// Determines the initial binary code.
///
/// Explicit values set with [`Stg::set_initial_value`] win; remaining
/// signals are inferred from the *first edge* of the signal encountered in a
/// breadth-first sweep of the token game (a first rise ⇒ initially 0, a
/// first fall ⇒ initially 1). Signals that never transition default to 0.
fn infer_initial_code(stg: &Stg, options: &ExploreOptions) -> Result<u64, StgError> {
    let mut value: Vec<Option<bool>> = (0..stg.signal_count())
        .map(|i| stg.initial_value(SignalId(i as u32)))
        .collect();
    let mut unresolved = value.iter().filter(|v| v.is_none()).count();
    if unresolved == 0 {
        return Ok(pack_code(&value));
    }

    let net = stg.net();
    let mut seen: HashMap<Marking, ()> = HashMap::new();
    let mut queue = VecDeque::new();
    let initial = stg.initial_marking();
    seen.insert(initial.clone(), ());
    queue.push_back(initial);

    while let Some(marking) = queue.pop_front() {
        if unresolved == 0 || seen.len() > options.state_limit {
            break;
        }
        for transition in net.enabled(&marking) {
            if let TransitionLabel::Event(ev) = stg.label(transition) {
                let slot = &mut value[ev.signal.index()];
                if slot.is_none() {
                    *slot = Some(ev.edge.source_value());
                    unresolved -= 1;
                }
            }
            let next = net
                .fire(transition, &marking)
                .expect("enabled transition must fire");
            if let Some(bound) = options.bound {
                net.check_bound(&next, bound)?;
            }
            if !seen.contains_key(&next) {
                seen.insert(next.clone(), ());
                queue.push_back(next);
            }
        }
    }
    Ok(pack_code(&value))
}

fn pack_code(values: &[Option<bool>]) -> u64 {
    let mut code = 0u64;
    for (i, v) in values.iter().enumerate() {
        if v.unwrap_or(false) {
            code |= 1 << i;
        }
    }
    code
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::signal::{Edge, SignalKind};

    fn handshake() -> Stg {
        let mut stg = Stg::new("hs");
        let a = stg.add_signal("a", SignalKind::Input).unwrap();
        let b = stg.add_signal("b", SignalKind::Output).unwrap();
        let ap = stg.transition_for(a, Edge::Rise);
        let bp = stg.transition_for(b, Edge::Rise);
        let am = stg.transition_for(a, Edge::Fall);
        let bm = stg.transition_for(b, Edge::Fall);
        stg.arc(ap, bp);
        stg.arc(bp, am);
        stg.arc(am, bm);
        stg.marked_arc(bm, ap);
        stg
    }

    #[test]
    fn handshake_has_four_states() {
        let sg = explore(&handshake()).unwrap();
        assert_eq!(sg.state_count(), 4);
        assert_eq!(sg.arc_count(), 4);
        assert!(sg.is_strongly_connected());
        assert_eq!(sg.code(sg.initial()), 0);
    }

    #[test]
    fn initial_values_inferred_from_first_edges() {
        // b- fires first for b if we mark the b- arc instead: initial b = 1.
        let mut stg = Stg::new("inv");
        let a = stg.add_signal("a", SignalKind::Input).unwrap();
        let b = stg.add_signal("b", SignalKind::Output).unwrap();
        let ap = stg.transition_for(a, Edge::Rise);
        let bm = stg.transition_for(b, Edge::Fall);
        let am = stg.transition_for(a, Edge::Fall);
        let bp = stg.transition_for(b, Edge::Rise);
        stg.arc(ap, bm);
        stg.arc(bm, am);
        stg.arc(am, bp);
        stg.marked_arc(bp, ap);
        let sg = explore(&stg).unwrap();
        // Initial: a = 0 (a+ first), b = 1 (b- first).
        assert_eq!(sg.code(sg.initial()), 0b10);
    }

    #[test]
    fn explicit_initial_values_override_inference() {
        let mut stg = handshake();
        let a = stg.signal_by_name("a").unwrap();
        stg.set_initial_value(a, false);
        let sg = explore(&stg).unwrap();
        assert_eq!(sg.code(sg.initial()) & 1, 0);
    }

    #[test]
    fn inconsistent_stg_rejected() {
        // a+ followed by a+ again without a-.
        let mut stg = Stg::new("bad");
        let a = stg.add_signal("a", SignalKind::Input).unwrap();
        let t1 = stg.transition_for(a, Edge::Rise);
        let t2 = stg.transition_for(a, Edge::Rise);
        stg.arc(t1, t2); // a+ twice in a row: inconsistent on purpose
        let p = stg.add_place("start");
        stg.set_tokens(p, 1);
        stg.arc_from_place(p, t1);
        let err = explore(&stg).unwrap_err();
        assert!(matches!(err, StgError::Inconsistent { .. }), "got {err:?}");
    }

    #[test]
    fn unbounded_net_rejected_with_safe_bound() {
        // A transition that only produces tokens.
        let mut stg = Stg::new("pump");
        let a = stg.add_signal("a", SignalKind::Input).unwrap();
        let t1 = stg.transition_for(a, Edge::Rise);
        let t2 = stg.transition_for(a, Edge::Fall);
        let p_loop = stg.add_place("loop");
        stg.set_tokens(p_loop, 1);
        stg.arc_from_place(p_loop, t1);
        stg.arc_to_place(t1, p_loop); // self-loop keeps t1 live
        let sink = stg.add_place("sink");
        stg.arc_to_place(t1, sink); // accumulates tokens unboundedly
        stg.arc_from_place(sink, t2);
        stg.arc_to_place(t2, sink);
        stg.arc_to_place(t2, sink);
        let err = explore(&stg).unwrap_err();
        assert!(
            matches!(err, StgError::Unbounded { .. } | StgError::Inconsistent { .. }),
            "got {err:?}"
        );
    }

    #[test]
    fn state_limit_enforced() {
        let stg = handshake();
        let options = ExploreOptions { state_limit: 2, ..ExploreOptions::default() };
        let err = explore_with(&stg, &options).unwrap_err();
        assert_eq!(err, StgError::StateLimitExceeded(2));
    }

    #[test]
    fn deadlock_detection() {
        let mut stg = Stg::new("dead");
        let a = stg.add_signal("a", SignalKind::Input).unwrap();
        let t1 = stg.transition_for(a, Edge::Rise);
        let p = stg.add_place("start");
        stg.set_tokens(p, 1);
        stg.arc_from_place(p, t1);
        // t1 produces nothing: deadlock after firing.
        let options = ExploreOptions { forbid_deadlock: true, ..ExploreOptions::default() };
        let err = explore_with(&stg, &options).unwrap_err();
        assert!(matches!(err, StgError::Deadlock(_)), "got {err:?}");
        // Without the flag the deadlock state is simply present.
        let sg = explore(&stg).unwrap();
        assert_eq!(sg.deadlock_states().len(), 1);
    }

    #[test]
    fn silent_transitions_preserve_codes() {
        let mut stg = Stg::new("eps");
        let a = stg.add_signal("a", SignalKind::Input).unwrap();
        let ap = stg.transition_for(a, Edge::Rise);
        let am = stg.transition_for(a, Edge::Fall);
        let eps = stg.silent("eps");
        stg.arc(ap, eps);
        stg.arc(eps, am);
        stg.marked_arc(am, ap);
        let sg = explore(&stg).unwrap();
        assert_eq!(sg.state_count(), 3);
        // The ε arc connects two states with identical codes.
        let silent_arcs: Vec<_> = sg
            .states()
            .flat_map(|s| {
                sg.successors(s)
                    .iter()
                    .filter(|arc| arc.event.is_none())
                    .map(move |arc| (s, arc.to))
                    .collect::<Vec<_>>()
            })
            .collect();
        assert_eq!(silent_arcs.len(), 1);
        let (from, to) = silent_arcs[0];
        assert_eq!(sg.code(from), sg.code(to));
    }

    #[test]
    fn too_many_signals_rejected() {
        let mut stg = Stg::new("wide");
        for i in 0..65 {
            stg.add_signal(format!("s{i}"), SignalKind::Input).unwrap();
        }
        let err = explore(&stg).unwrap_err();
        assert_eq!(err, StgError::TooManySignals(65));
    }
}
