//! Signals, edges, and signal events.
//!
//! An STG transition is labelled with a [`SignalEvent`] — a rising or
//! falling [`Edge`] of a named signal — or is *silent* (a dummy/ε
//! transition, represented at the [`crate::stg::Stg`] level).

use std::fmt;

/// Index of a signal within an [`crate::Stg`]'s signal table.
///
/// Signal ids are dense and stable: the first declared signal receives id 0.
///
/// # Examples
///
/// ```
/// use rt_stg::SignalId;
///
/// let id = SignalId(3);
/// assert_eq!(id.index(), 3);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct SignalId(pub u32);

impl SignalId {
    /// Returns the id as a `usize` index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for SignalId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "s{}", self.0)
    }
}

/// Interface role of a signal.
///
/// The distinction drives synthesis and verification: only non-input
/// signals are implemented by logic; inputs are produced by the
/// environment.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum SignalKind {
    /// Driven by the environment.
    Input,
    /// Driven by the circuit, observable by the environment.
    Output,
    /// Driven by the circuit, not observable (e.g. inserted state signals).
    Internal,
}

impl SignalKind {
    /// Returns `true` for signals the circuit must implement
    /// ([`SignalKind::Output`] and [`SignalKind::Internal`]).
    ///
    /// # Examples
    ///
    /// ```
    /// use rt_stg::SignalKind;
    ///
    /// assert!(!SignalKind::Input.is_implemented());
    /// assert!(SignalKind::Output.is_implemented());
    /// assert!(SignalKind::Internal.is_implemented());
    /// ```
    pub fn is_implemented(self) -> bool {
        !matches!(self, SignalKind::Input)
    }
}

impl fmt::Display for SignalKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let text = match self {
            SignalKind::Input => "input",
            SignalKind::Output => "output",
            SignalKind::Internal => "internal",
        };
        f.write_str(text)
    }
}

/// Direction of a signal transition.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Edge {
    /// `a+`: the signal goes from 0 to 1.
    Rise,
    /// `a-`: the signal goes from 1 to 0.
    Fall,
}

impl Edge {
    /// Returns the opposite edge.
    ///
    /// # Examples
    ///
    /// ```
    /// use rt_stg::Edge;
    ///
    /// assert_eq!(Edge::Rise.opposite(), Edge::Fall);
    /// assert_eq!(Edge::Fall.opposite(), Edge::Rise);
    /// ```
    pub fn opposite(self) -> Edge {
        match self {
            Edge::Rise => Edge::Fall,
            Edge::Fall => Edge::Rise,
        }
    }

    /// The signal value *after* this edge fires (1 for rise, 0 for fall).
    pub fn target_value(self) -> bool {
        matches!(self, Edge::Rise)
    }

    /// The signal value *required before* this edge may fire.
    pub fn source_value(self) -> bool {
        !self.target_value()
    }

    /// The conventional suffix: `+` for rise, `-` for fall.
    pub fn suffix(self) -> char {
        match self {
            Edge::Rise => '+',
            Edge::Fall => '-',
        }
    }
}

impl fmt::Display for Edge {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.suffix())
    }
}

/// A signal transition event: a specific edge of a specific signal.
///
/// `SignalEvent` is the alphabet of the relative-timing methodology — both
/// STG labels and RT assumptions ("event `a` occurs before event `b`") are
/// expressed over signal events.
///
/// # Examples
///
/// ```
/// use rt_stg::{Edge, SignalEvent, SignalId};
///
/// let ev = SignalEvent::rise(SignalId(0));
/// assert_eq!(ev.edge, Edge::Rise);
/// assert_eq!(ev.opposite(), SignalEvent::fall(SignalId(0)));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct SignalEvent {
    /// The signal that transitions.
    pub signal: SignalId,
    /// The direction of the transition.
    pub edge: Edge,
}

impl SignalEvent {
    /// Creates a new event.
    pub fn new(signal: SignalId, edge: Edge) -> Self {
        SignalEvent { signal, edge }
    }

    /// Shorthand for a rising event.
    pub fn rise(signal: SignalId) -> Self {
        SignalEvent::new(signal, Edge::Rise)
    }

    /// Shorthand for a falling event.
    pub fn fall(signal: SignalId) -> Self {
        SignalEvent::new(signal, Edge::Fall)
    }

    /// The event of the same signal in the opposite direction.
    pub fn opposite(self) -> Self {
        SignalEvent::new(self.signal, self.edge.opposite())
    }
}

impl fmt::Display for SignalEvent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}{}", self.signal, self.edge)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn edge_opposite_is_involutive() {
        for edge in [Edge::Rise, Edge::Fall] {
            assert_eq!(edge.opposite().opposite(), edge);
        }
    }

    #[test]
    fn edge_values_are_consistent() {
        assert!(Edge::Rise.target_value());
        assert!(!Edge::Rise.source_value());
        assert!(!Edge::Fall.target_value());
        assert!(Edge::Fall.source_value());
    }

    #[test]
    fn event_display_uses_plus_minus() {
        let ev = SignalEvent::rise(SignalId(2));
        assert_eq!(ev.to_string(), "s2+");
        assert_eq!(ev.opposite().to_string(), "s2-");
    }

    #[test]
    fn signal_kind_classification() {
        assert!(!SignalKind::Input.is_implemented());
        assert!(SignalKind::Output.is_implemented());
        assert!(SignalKind::Internal.is_implemented());
    }

    #[test]
    fn events_order_by_signal_then_edge() {
        let a_plus = SignalEvent::rise(SignalId(0));
        let a_minus = SignalEvent::fall(SignalId(0));
        let b_plus = SignalEvent::rise(SignalId(1));
        assert!(a_plus < a_minus || a_minus < a_plus);
        assert!(a_plus < b_plus);
    }
}
