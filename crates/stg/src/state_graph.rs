//! State graphs: the reachable behaviour of an STG with binary-coded
//! states.
//!
//! A [`StateGraph`] is the central object of the synthesis flow (Figure 2 of
//! the paper): logic synthesis derives next-state functions from it, CSC
//! analysis detects coding conflicts on it, and relative timing produces a
//! *lazy* (pruned, early-enabled) variant of it.

use std::collections::{BTreeSet, HashMap};
use std::fmt;

use crate::marking::{MarkingLayout, PackedMarking};
use crate::petri::Marking;
use crate::signal::{Edge, SignalEvent, SignalId, SignalKind};

/// Index of a state in a [`StateGraph`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct StateId(pub u32);

impl StateId {
    /// Returns the id as a `usize` index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for StateId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "q{}", self.0)
    }
}

/// A labelled arc of the state graph.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct StateArc {
    /// The event that fires, or `None` for a silent (ε) move.
    pub event: Option<SignalEvent>,
    /// Destination state.
    pub to: StateId,
}

/// A complete-state-coding conflict: two states share a binary code but
/// disagree on the implied value of a non-input signal.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct CscConflict {
    /// First state.
    pub a: StateId,
    /// Second state.
    pub b: StateId,
    /// Signal whose next-state function is ambiguous.
    pub signal: SignalId,
}

/// Incremental builder for CSR arc rows: the producer starts each
/// state's row in state-id order and appends its arcs, and the finished
/// buffers drop straight into [`StateGraph::from_csr_parts`] — no
/// nested `Vec<Vec<StateArc>>` intermediate anywhere.
///
/// Every CSR producer emits through this builder: the serial explicit
/// analyser ([`crate::reach`]), the sharded walk's renumbering pass
/// (which replays the global FIFO discovery order over the merged
/// shards, so the parallel path lands in the identical buffers), and
/// the concurrency-reduction pass in `rt-core::lazy`. Any breadth-first
/// construction that hands out state ids in discovery order completes
/// rows in exactly id order, which is the only contract the builder
/// requires.
///
/// # Examples
///
/// ```
/// use rt_stg::state_graph::{CsrBuilder, StateArc};
/// use rt_stg::StateId;
///
/// let mut b = CsrBuilder::with_capacity(2, 2);
/// b.start_row(); // state 0
/// b.push_arc(StateArc { event: None, to: StateId(1) });
/// b.start_row(); // state 1
/// b.push_arc(StateArc { event: None, to: StateId(0) });
/// let (offsets, arcs) = b.finish();
/// assert_eq!(offsets, vec![0, 1, 2]);
/// assert_eq!(arcs.len(), 2);
/// ```
#[derive(Debug, Clone, Default)]
pub struct CsrBuilder {
    offsets: Vec<u32>,
    arcs: Vec<StateArc>,
}

impl CsrBuilder {
    /// An empty builder.
    pub fn new() -> Self {
        CsrBuilder::default()
    }

    /// An empty builder pre-sized for `states` rows and `arcs` arcs.
    pub fn with_capacity(states: usize, arcs: usize) -> Self {
        CsrBuilder {
            offsets: Vec::with_capacity(states + 1),
            arcs: Vec::with_capacity(arcs),
        }
    }

    /// Opens the next state's row; all subsequent [`CsrBuilder::push_arc`]
    /// calls land in it until the next `start_row`.
    #[inline]
    pub fn start_row(&mut self) {
        self.offsets.push(self.arcs.len() as u32);
    }

    /// Appends an arc to the current row.
    #[inline]
    pub fn push_arc(&mut self, arc: StateArc) {
        self.arcs.push(arc);
    }

    /// Number of rows started so far.
    pub fn rows(&self) -> usize {
        self.offsets.len()
    }

    /// Number of arcs pushed so far.
    pub fn arc_count(&self) -> usize {
        self.arcs.len()
    }

    /// Seals the builder, returning `(offsets, arcs)` with the final
    /// sentinel offset appended (`offsets.len() == rows + 1`).
    pub fn finish(mut self) -> (Vec<u32>, Vec<StateArc>) {
        self.offsets.push(self.arcs.len() as u32);
        (self.offsets, self.arcs)
    }
}

/// Arc rows in compressed-sparse-row form: all rows live in one
/// contiguous `Vec<StateArc>`, with `offsets[i]..offsets[i+1]` delimiting
/// state `i`'s row. Synthesis, CSC analysis and the lazy passes iterate
/// arcs heavily; CSR keeps those walks on contiguous memory instead of
/// chasing one heap allocation per state.
#[derive(Debug, Clone, Default)]
struct CsrArcs {
    offsets: Vec<u32>,
    arcs: Vec<StateArc>,
}

impl CsrArcs {
    /// Builds the reversed (predecessor) CSR of `succ` by counting sort:
    /// one pass to count indegrees, a prefix sum, one pass to fill.
    /// Row-internal order matches iterating successor rows in state
    /// order, preserving the historical nested-`Vec` predecessor order.
    fn reversed(succ: &CsrArcs, states: usize) -> Self {
        let mut counts = vec![0u32; states + 1];
        for arc in &succ.arcs {
            counts[arc.to.index() + 1] += 1;
        }
        for i in 1..counts.len() {
            counts[i] += counts[i - 1];
        }
        let offsets = counts.clone();
        let mut cursor = counts;
        let mut arcs = vec![
            StateArc {
                event: None,
                to: StateId(0)
            };
            succ.arcs.len()
        ];
        for from in 0..states {
            for arc in succ.row(from) {
                let slot = &mut cursor[arc.to.index()];
                arcs[*slot as usize] = StateArc {
                    event: arc.event,
                    to: StateId(from as u32),
                };
                *slot += 1;
            }
        }
        CsrArcs { offsets, arcs }
    }

    #[inline]
    fn row(&self, state: usize) -> &[StateArc] {
        &self.arcs[self.offsets[state] as usize..self.offsets[state + 1] as usize]
    }
}

/// The reachable state space of an STG.
///
/// Each state carries a binary *code* (one bit per signal, up to 64
/// signals). Arcs are labelled with signal events or ε and stored in
/// compressed-sparse-row form (contiguous per-state rows, built once
/// after exploration). The graph keeps the originating markings in
/// packed form for diagnostics.
///
/// # Examples
///
/// ```
/// use rt_stg::{models, explore};
///
/// # fn main() -> Result<(), rt_stg::StgError> {
/// let stg = models::fifo_stg();
/// let sg = explore(&stg)?;
/// let initial = sg.initial();
/// assert_eq!(sg.code(initial), 0, "FIFO starts with all signals low");
/// assert!(sg.csc_conflicts().is_empty() || !sg.csc_conflicts().is_empty());
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct StateGraph {
    signal_names: Vec<String>,
    signal_kinds: Vec<SignalKind>,
    codes: Vec<u64>,
    succ: CsrArcs,
    preds: CsrArcs,
    layout: MarkingLayout,
    markings: Vec<PackedMarking>,
    initial: StateId,
}

impl StateGraph {
    /// Builds a state graph from raw parts with nested per-state arc
    /// rows. Convenience for tests and hand-built graphs; production
    /// producers (the reachability analyser, `rt-core`'s concurrency
    /// reduction) emit CSR directly through [`CsrBuilder`] and
    /// [`StateGraph::from_csr_parts`].
    pub fn from_parts(
        signal_names: Vec<String>,
        signal_kinds: Vec<SignalKind>,
        codes: Vec<u64>,
        arcs: Vec<Vec<StateArc>>,
        markings: Vec<Marking>,
        initial: StateId,
    ) -> Self {
        let places = markings.first().map_or(0, Marking::len);
        let max_tokens = markings
            .iter()
            .flat_map(|m| m.marked_places().map(|(_, t)| t))
            .max()
            .unwrap_or(0);
        let layout = MarkingLayout::new(places, Some(max_tokens.max(1)));
        let packed = markings
            .iter()
            .map(|m| PackedMarking::pack(&layout, m))
            .collect();
        let mut builder = CsrBuilder::with_capacity(arcs.len(), arcs.iter().map(Vec::len).sum());
        for row in &arcs {
            builder.start_row();
            for &arc in row {
                builder.push_arc(arc);
            }
        }
        let (offsets, arcs) = builder.finish();
        Self::from_csr_parts(
            signal_names,
            signal_kinds,
            codes,
            offsets,
            arcs,
            packed,
            layout,
            initial,
        )
    }

    /// Builds a state graph from pre-assembled CSR buffers (`offsets`
    /// delimits each state's row in `arcs`, with a final sentinel —
    /// exactly what [`CsrBuilder::finish`] yields). This is the
    /// zero-conversion constructor every CSR-emitting producer uses.
    ///
    /// # Panics
    ///
    /// Debug-asserts that `offsets` has one entry per state plus the
    /// sentinel.
    #[allow(clippy::too_many_arguments)]
    pub fn from_csr_parts(
        signal_names: Vec<String>,
        signal_kinds: Vec<SignalKind>,
        codes: Vec<u64>,
        offsets: Vec<u32>,
        arcs: Vec<StateArc>,
        markings: Vec<PackedMarking>,
        layout: MarkingLayout,
        initial: StateId,
    ) -> Self {
        debug_assert_eq!(offsets.len(), codes.len() + 1);
        let succ = CsrArcs { offsets, arcs };
        Self::from_csr_rows(
            signal_names,
            signal_kinds,
            codes,
            succ,
            markings,
            layout,
            initial,
        )
    }

    fn from_csr_rows(
        signal_names: Vec<String>,
        signal_kinds: Vec<SignalKind>,
        codes: Vec<u64>,
        succ: CsrArcs,
        markings: Vec<PackedMarking>,
        layout: MarkingLayout,
        initial: StateId,
    ) -> Self {
        let preds = CsrArcs::reversed(&succ, codes.len());
        StateGraph {
            signal_names,
            signal_kinds,
            codes,
            succ,
            preds,
            layout,
            markings,
            initial,
        }
    }

    /// Number of states.
    pub fn state_count(&self) -> usize {
        self.codes.len()
    }

    /// Number of arcs.
    pub fn arc_count(&self) -> usize {
        self.succ.arcs.len()
    }

    /// The initial state.
    pub fn initial(&self) -> StateId {
        self.initial
    }

    /// Number of signals in the code.
    pub fn signal_count(&self) -> usize {
        self.signal_names.len()
    }

    /// Name of `signal`.
    pub fn signal_name(&self, signal: SignalId) -> &str {
        &self.signal_names[signal.index()]
    }

    /// Kind of `signal`.
    pub fn signal_kind(&self, signal: SignalId) -> SignalKind {
        self.signal_kinds[signal.index()]
    }

    /// Iterates over all signals.
    pub fn signals(&self) -> impl Iterator<Item = SignalId> {
        (0..self.signal_count() as u32).map(SignalId)
    }

    /// Signals that must be implemented by logic (outputs + internals).
    pub fn implemented_signals(&self) -> Vec<SignalId> {
        self.signals()
            .filter(|&s| self.signal_kind(s).is_implemented())
            .collect()
    }

    /// Iterates over all states.
    pub fn states(&self) -> impl Iterator<Item = StateId> {
        (0..self.state_count() as u32).map(StateId)
    }

    /// Binary code of `state` (bit *i* = value of signal *i*).
    pub fn code(&self, state: StateId) -> u64 {
        self.codes[state.index()]
    }

    /// Value of `signal` in `state`.
    pub fn signal_value(&self, state: StateId, signal: SignalId) -> bool {
        self.codes[state.index()] >> signal.index() & 1 == 1
    }

    /// The marking from which `state` was created, unpacked to a dense
    /// token vector (allocates; intended for diagnostics, not hot loops —
    /// use [`StateGraph::packed_marking`] there).
    pub fn marking(&self, state: StateId) -> Marking {
        self.markings[state.index()].unpack(&self.layout)
    }

    /// The packed marking behind `state`.
    pub fn packed_marking(&self, state: StateId) -> &PackedMarking {
        &self.markings[state.index()]
    }

    /// The packing layout shared by all of this graph's markings.
    pub fn marking_layout(&self) -> &MarkingLayout {
        &self.layout
    }

    /// Outgoing arcs of `state`.
    pub fn successors(&self, state: StateId) -> &[StateArc] {
        self.succ.row(state.index())
    }

    /// Incoming arcs of `state` (`arc.to` is the *predecessor* state).
    pub fn predecessors(&self, state: StateId) -> &[StateArc] {
        self.preds.row(state.index())
    }

    /// Events enabled in `state` (silent arcs excluded).
    pub fn enabled_events(&self, state: StateId) -> Vec<SignalEvent> {
        let mut events: Vec<SignalEvent> = self
            .successors(state)
            .iter()
            .filter_map(|arc| arc.event)
            .collect();
        events.sort();
        events.dedup();
        events
    }

    /// Whether `event` is enabled in `state`.
    pub fn is_enabled(&self, state: StateId, event: SignalEvent) -> bool {
        self.successors(state)
            .iter()
            .any(|arc| arc.event == Some(event))
    }

    /// Whether `signal` is *excited* in `state`, and if so toward which
    /// edge.
    pub fn excitation(&self, state: StateId, signal: SignalId) -> Option<Edge> {
        for arc in self.successors(state) {
            if let Some(ev) = arc.event {
                if ev.signal == signal {
                    return Some(ev.edge);
                }
            }
        }
        None
    }

    /// The *implied value* (next-state function value) of `signal` in
    /// `state`: 1 if the signal is high and stable or excited to rise, 0 if
    /// low and stable or excited to fall.
    pub fn implied_value(&self, state: StateId, signal: SignalId) -> bool {
        match self.excitation(state, signal) {
            Some(Edge::Rise) => true,
            Some(Edge::Fall) => false,
            None => self.signal_value(state, signal),
        }
    }

    /// The excitation region of `event`: all states in which it is enabled.
    pub fn excitation_region(&self, event: SignalEvent) -> Vec<StateId> {
        self.states()
            .filter(|&s| self.is_enabled(s, event))
            .collect()
    }

    /// The quiescent region of `signal` at `value`: states where the signal
    /// holds `value` and is not excited.
    pub fn quiescent_region(&self, signal: SignalId, value: bool) -> Vec<StateId> {
        self.states()
            .filter(|&s| {
                self.signal_value(s, signal) == value && self.excitation(s, signal).is_none()
            })
            .collect()
    }

    /// Unique-state-coding violations: pairs of distinct states with the
    /// same binary code.
    pub fn usc_conflicts(&self) -> Vec<(StateId, StateId)> {
        let mut by_code: HashMap<u64, Vec<StateId>> = HashMap::new();
        for s in self.states() {
            by_code.entry(self.code(s)).or_default().push(s);
        }
        let mut out = Vec::new();
        for group in by_code.values() {
            for i in 0..group.len() {
                for j in i + 1..group.len() {
                    out.push((group[i], group[j]));
                }
            }
        }
        out.sort();
        out
    }

    /// Complete-state-coding conflicts: same code, different implied value
    /// of some implemented signal. CSC conflicts make the next-state
    /// function ill-defined and require state-signal insertion.
    pub fn csc_conflicts(&self) -> Vec<CscConflict> {
        let implemented = self.implemented_signals();
        let mut out = Vec::new();
        for (a, b) in self.usc_conflicts() {
            for &signal in &implemented {
                if self.implied_value(a, signal) != self.implied_value(b, signal) {
                    out.push(CscConflict { a, b, signal });
                }
            }
        }
        out
    }

    /// States whose code equals `code`.
    pub fn states_with_code(&self, code: u64) -> Vec<StateId> {
        self.states().filter(|&s| self.code(s) == code).collect()
    }

    /// All distinct codes present in the graph.
    pub fn distinct_codes(&self) -> BTreeSet<u64> {
        self.codes.iter().copied().collect()
    }

    /// States with no outgoing arcs (deadlocks).
    pub fn deadlock_states(&self) -> Vec<StateId> {
        self.states()
            .filter(|&s| self.successors(s).is_empty())
            .collect()
    }

    /// Renders a human-readable state code such as `1010` (signal 0 first).
    pub fn format_code(&self, state: StateId) -> String {
        (0..self.signal_count())
            .map(|i| {
                if self.code(state) >> i & 1 == 1 {
                    '1'
                } else {
                    '0'
                }
            })
            .collect()
    }

    /// Graphviz DOT rendering for debugging.
    pub fn to_dot(&self) -> String {
        let mut out = String::from("digraph sg {\n  rankdir=TB;\n");
        for s in self.states() {
            let shape = if s == self.initial {
                "doublecircle"
            } else {
                "circle"
            };
            out.push_str(&format!(
                "  {s} [shape={shape},label=\"{}\\n{}\"];\n",
                s,
                self.format_code(s)
            ));
        }
        for s in self.states() {
            for arc in self.successors(s) {
                let label = match arc.event {
                    Some(ev) => format!("{}{}", self.signal_name(ev.signal), ev.edge.suffix()),
                    None => "ε".to_string(),
                };
                out.push_str(&format!("  {s} -> {} [label=\"{label}\"];\n", arc.to));
            }
        }
        out.push_str("}\n");
        out
    }

    /// Total number of states reachable from `state` (including itself),
    /// following all arcs. Used by liveness diagnostics.
    pub fn reachable_from(&self, state: StateId) -> usize {
        let mut seen = vec![false; self.state_count()];
        let mut stack = vec![state];
        seen[state.index()] = true;
        let mut count = 0;
        while let Some(s) = stack.pop() {
            count += 1;
            for arc in self.successors(s) {
                if !seen[arc.to.index()] {
                    seen[arc.to.index()] = true;
                    stack.push(arc.to);
                }
            }
        }
        count
    }

    /// Whether every state can reach every other state (strong
    /// connectivity), the usual liveness condition for control circuits.
    pub fn is_strongly_connected(&self) -> bool {
        if self.state_count() == 0 {
            return true;
        }
        if self.reachable_from(self.initial) != self.state_count() {
            return false;
        }
        // Reverse reachability from the initial state.
        let mut seen = vec![false; self.state_count()];
        let mut stack = vec![self.initial];
        seen[self.initial.index()] = true;
        let mut count = 0;
        while let Some(s) = stack.pop() {
            count += 1;
            for arc in self.predecessors(s) {
                if !seen[arc.to.index()] {
                    seen[arc.to.index()] = true;
                    stack.push(arc.to);
                }
            }
        }
        count == self.state_count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Hand-built 4-state handshake SG: a (input) then b (output).
    /// q0 --a+--> q1 --b+--> q2 --a---> q3 --b---> q0
    fn handshake_sg() -> StateGraph {
        let a = SignalId(0);
        let b = SignalId(1);
        let arcs = vec![
            vec![StateArc {
                event: Some(SignalEvent::rise(a)),
                to: StateId(1),
            }],
            vec![StateArc {
                event: Some(SignalEvent::rise(b)),
                to: StateId(2),
            }],
            vec![StateArc {
                event: Some(SignalEvent::fall(a)),
                to: StateId(3),
            }],
            vec![StateArc {
                event: Some(SignalEvent::fall(b)),
                to: StateId(0),
            }],
        ];
        StateGraph::from_parts(
            vec!["a".into(), "b".into()],
            vec![SignalKind::Input, SignalKind::Output],
            vec![0b00, 0b01, 0b11, 0b10],
            arcs,
            vec![Marking::empty(0); 4],
            StateId(0),
        )
    }

    #[test]
    fn codes_and_values() {
        let sg = handshake_sg();
        assert!(!sg.signal_value(StateId(0), SignalId(0)));
        assert!(sg.signal_value(StateId(2), SignalId(0)));
        assert!(sg.signal_value(StateId(2), SignalId(1)));
        assert_eq!(sg.format_code(StateId(2)), "11");
    }

    #[test]
    fn excitation_and_implied_values() {
        let sg = handshake_sg();
        let b = SignalId(1);
        // q1: b is excited to rise -> implied 1 though current value is 0.
        assert_eq!(sg.excitation(StateId(1), b), Some(Edge::Rise));
        assert!(sg.implied_value(StateId(1), b));
        // q2: b stable high.
        assert_eq!(sg.excitation(StateId(2), b), None);
        assert!(sg.implied_value(StateId(2), b));
        // q3: excited to fall.
        assert!(!sg.implied_value(StateId(3), b));
    }

    #[test]
    fn excitation_and_quiescent_regions_partition_states() {
        let sg = handshake_sg();
        let b = SignalId(1);
        let er_plus = sg.excitation_region(SignalEvent::rise(b));
        let er_minus = sg.excitation_region(SignalEvent::fall(b));
        let qr_high = sg.quiescent_region(b, true);
        let qr_low = sg.quiescent_region(b, false);
        let total = er_plus.len() + er_minus.len() + qr_high.len() + qr_low.len();
        assert_eq!(total, sg.state_count());
    }

    #[test]
    fn handshake_has_no_coding_conflicts() {
        let sg = handshake_sg();
        assert!(sg.usc_conflicts().is_empty());
        assert!(sg.csc_conflicts().is_empty());
    }

    #[test]
    fn csc_conflict_detected_when_codes_collide() {
        // Two states with the same code 00, one excites b+ and one does not.
        let a = SignalId(0);
        let b = SignalId(1);
        let arcs = vec![
            vec![StateArc {
                event: Some(SignalEvent::rise(b)),
                to: StateId(1),
            }],
            vec![StateArc {
                event: Some(SignalEvent::fall(b)),
                to: StateId(2),
            }],
            vec![StateArc {
                event: Some(SignalEvent::rise(a)),
                to: StateId(0),
            }],
        ];
        let sg = StateGraph::from_parts(
            vec!["a".into(), "b".into()],
            vec![SignalKind::Input, SignalKind::Output],
            vec![0b00, 0b10, 0b00],
            arcs,
            vec![Marking::empty(0); 3],
            StateId(0),
        );
        let usc = sg.usc_conflicts();
        assert_eq!(usc, vec![(StateId(0), StateId(2))]);
        let csc = sg.csc_conflicts();
        assert_eq!(csc.len(), 1);
        assert_eq!(csc[0].signal, b);
    }

    #[test]
    fn strong_connectivity_of_the_cycle() {
        let sg = handshake_sg();
        assert!(sg.is_strongly_connected());
        assert_eq!(sg.reachable_from(StateId(2)), 4);
        assert!(sg.deadlock_states().is_empty());
    }

    #[test]
    fn dot_rendering_contains_labels() {
        let sg = handshake_sg();
        let dot = sg.to_dot();
        assert!(dot.contains("a+"));
        assert!(dot.contains("b-"));
        assert!(dot.contains("doublecircle"));
    }
}
