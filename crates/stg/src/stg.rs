//! Signal Transition Graphs: labelled Petri nets specifying asynchronous
//! control circuits.

use std::fmt;

use crate::error::StgError;
use crate::petri::{Marking, PetriNet, PlaceId, TransitionId};
use crate::signal::{Edge, SignalEvent, SignalId, SignalKind};

/// Label attached to an STG transition.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TransitionLabel {
    /// A rising or falling edge of a signal.
    Event(SignalEvent),
    /// A silent (ε / dummy) transition: fires without changing any signal.
    Silent,
}

impl TransitionLabel {
    /// The signal event, if this label is not silent.
    pub fn event(self) -> Option<SignalEvent> {
        match self {
            TransitionLabel::Event(ev) => Some(ev),
            TransitionLabel::Silent => None,
        }
    }
}

/// Declaration of one signal: its name and interface role.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SignalDecl {
    /// Signal name as it appears in `.g` files and diagnostics.
    pub name: String,
    /// Interface role.
    pub kind: SignalKind,
}

/// A Signal Transition Graph.
///
/// An `Stg` wraps a [`PetriNet`] with a signal table and per-transition
/// labels. Transitions are created through [`Stg::transition`] (one edge of
/// one signal) or [`Stg::silent`]; causality arcs between transitions are
/// added with [`Stg::arc`] / [`Stg::marked_arc`], which create implicit
/// places, or through explicit places ([`Stg::add_place`]) when choice is
/// needed.
///
/// # Examples
///
/// A two-signal handshake `a+ → b+ → a- → b- → (back)`:
///
/// ```
/// use rt_stg::stg::Stg;
/// use rt_stg::{Edge, SignalKind};
///
/// # fn main() -> Result<(), rt_stg::StgError> {
/// let mut stg = Stg::new("handshake");
/// let a = stg.add_signal("a", SignalKind::Input)?;
/// let b = stg.add_signal("b", SignalKind::Output)?;
/// let a_plus = stg.transition_for(a, Edge::Rise);
/// let b_plus = stg.transition_for(b, Edge::Rise);
/// let a_minus = stg.transition_for(a, Edge::Fall);
/// let b_minus = stg.transition_for(b, Edge::Fall);
/// stg.arc(a_plus, b_plus);
/// stg.arc(b_plus, a_minus);
/// stg.arc(a_minus, b_minus);
/// stg.marked_arc(b_minus, a_plus); // token: a+ is initially enabled
///
/// let sg = rt_stg::explore(&stg)?;
/// assert_eq!(sg.state_count(), 4);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct Stg {
    name: String,
    net: PetriNet,
    signals: Vec<SignalDecl>,
    labels: Vec<TransitionLabel>,
    initial_tokens: Vec<u16>,
    initial_values: Vec<Option<bool>>,
}

impl Stg {
    /// Creates an empty STG with the given model name.
    pub fn new(name: impl Into<String>) -> Self {
        Stg {
            name: name.into(),
            net: PetriNet::new(),
            signals: Vec::new(),
            labels: Vec::new(),
            initial_tokens: Vec::new(),
            initial_values: Vec::new(),
        }
    }

    /// Reassembles an STG from its stored parts — the
    /// exact-reconstruction constructor the service wire codec uses
    /// (paired with [`PetriNet::from_parts`], which validates the net
    /// itself).
    ///
    /// # Errors
    ///
    /// [`StgError::DuplicateSignal`] on a repeated signal name;
    /// [`StgError::UnknownSignal`] when a transition label names a
    /// signal outside the table; [`StgError::Parse`] (line 0) when the
    /// label, token or value vectors do not match the net's sizes.
    pub fn from_parts(
        name: String,
        net: PetriNet,
        signals: Vec<SignalDecl>,
        labels: Vec<TransitionLabel>,
        initial_tokens: Vec<u16>,
        initial_values: Vec<Option<bool>>,
    ) -> Result<Stg, StgError> {
        let inconsistent = |message: String| StgError::Parse { line: 0, message };
        if labels.len() != net.transition_count() {
            return Err(inconsistent(format!(
                "{} labels for {} transitions",
                labels.len(),
                net.transition_count()
            )));
        }
        if initial_tokens.len() != net.place_count() {
            return Err(inconsistent(format!(
                "{} initial token counts for {} places",
                initial_tokens.len(),
                net.place_count()
            )));
        }
        if initial_values.len() != signals.len() {
            return Err(inconsistent(format!(
                "{} initial values for {} signals",
                initial_values.len(),
                signals.len()
            )));
        }
        for (index, decl) in signals.iter().enumerate() {
            if signals[..index].iter().any(|s| s.name == decl.name) {
                return Err(StgError::DuplicateSignal(decl.name.clone()));
            }
        }
        for label in &labels {
            if let TransitionLabel::Event(event) = label {
                if event.signal.index() >= signals.len() {
                    return Err(StgError::UnknownSignal(format!(
                        "signal id {} of {}",
                        event.signal.0,
                        signals.len()
                    )));
                }
            }
        }
        Ok(Stg {
            name,
            net,
            signals,
            labels,
            initial_tokens,
            initial_values,
        })
    }

    /// The model name (used by the `.g` writer).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Replaces the model name.
    pub fn set_name(&mut self, name: impl Into<String>) {
        self.name = name.into();
    }

    /// The underlying Petri net.
    pub fn net(&self) -> &PetriNet {
        &self.net
    }

    /// A content hash of the specification: signals (names, roles,
    /// forced initial values), transition labels, arc structure with
    /// weights, and the initial marking. Two `Stg`s built the same way
    /// hash equal; the model *name* and place names are excluded (they
    /// affect no analysis — signal names do, via the verifier's
    /// name-based net matching, so they are hashed).
    ///
    /// This is the memo-cache key of the synthesis service
    /// (`rt-service`): every analysis result is a pure function of
    /// exactly the content hashed here plus the analysis options, so a
    /// hash hit may serve a cached resolution/verdict. FxHash quality:
    /// collisions are possible in principle; the service tolerates them
    /// the way any memo cache over a 64-bit key does.
    ///
    /// # Examples
    ///
    /// ```
    /// use rt_stg::models;
    ///
    /// let a = models::fifo_stg();
    /// let mut b = models::fifo_stg();
    /// b.set_name("renamed");
    /// assert_eq!(a.content_hash(), b.content_hash(), "names excluded");
    /// assert_ne!(
    ///     a.content_hash(),
    ///     models::celement_stg().content_hash(),
    ///     "different structure, different hash"
    /// );
    /// ```
    pub fn content_hash(&self) -> u64 {
        use rt_boolean::fxhash::FxHasher;
        use std::hash::Hasher as _;
        let mut hasher = FxHasher::default();
        hasher.write_u64(self.signals.len() as u64);
        for (index, decl) in self.signals.iter().enumerate() {
            hasher.write_u64(index as u64);
            hasher.write(decl.name.as_bytes());
            hasher.write_u8(match decl.kind {
                SignalKind::Input => 0,
                SignalKind::Output => 1,
                SignalKind::Internal => 2,
            });
            hasher.write_u8(match self.initial_values[index] {
                None => 0,
                Some(false) => 1,
                Some(true) => 2,
            });
        }
        hasher.write_u64(self.net.place_count() as u64);
        for (index, &tokens) in self.initial_tokens.iter().enumerate() {
            if tokens != 0 {
                hasher.write_u64(index as u64);
                hasher.write_u16(tokens);
            }
        }
        hasher.write_u64(self.net.transition_count() as u64);
        for transition in self.net.transitions() {
            match self.label(transition) {
                TransitionLabel::Event(event) => {
                    hasher.write_u8(1);
                    hasher.write_u32(event.signal.0);
                    hasher.write_u8(matches!(event.edge, Edge::Rise) as u8);
                }
                TransitionLabel::Silent => {
                    hasher.write_u8(2);
                    hasher.write(self.net.transition_name(transition).as_bytes());
                }
            }
            for arc in self.net.preset(transition) {
                hasher.write_u32(arc.place.0);
                hasher.write_u16(arc.weight);
            }
            hasher.write_u8(0xff);
            for arc in self.net.postset(transition) {
                hasher.write_u32(arc.place.0);
                hasher.write_u16(arc.weight);
            }
            hasher.write_u8(0xfe);
        }
        hasher.finish()
    }

    /// Declares a signal.
    ///
    /// # Errors
    ///
    /// Returns [`StgError::DuplicateSignal`] if the name is already taken.
    pub fn add_signal(
        &mut self,
        name: impl Into<String>,
        kind: SignalKind,
    ) -> Result<SignalId, StgError> {
        let name = name.into();
        if self.signals.iter().any(|s| s.name == name) {
            return Err(StgError::DuplicateSignal(name));
        }
        let id = SignalId(self.signals.len() as u32);
        self.signals.push(SignalDecl { name, kind });
        self.initial_values.push(None);
        Ok(id)
    }

    /// Number of declared signals.
    pub fn signal_count(&self) -> usize {
        self.signals.len()
    }

    /// The declaration of `signal`.
    pub fn signal(&self, signal: SignalId) -> &SignalDecl {
        &self.signals[signal.index()]
    }

    /// Name of `signal`.
    pub fn signal_name(&self, signal: SignalId) -> &str {
        &self.signals[signal.index()].name
    }

    /// Interface role of `signal`.
    pub fn signal_kind(&self, signal: SignalId) -> SignalKind {
        self.signals[signal.index()].kind
    }

    /// Looks up a signal id by name.
    pub fn signal_by_name(&self, name: &str) -> Option<SignalId> {
        self.signals
            .iter()
            .position(|s| s.name == name)
            .map(|i| SignalId(i as u32))
    }

    /// Iterates over all signal ids.
    pub fn signals(&self) -> impl Iterator<Item = SignalId> {
        (0..self.signal_count() as u32).map(SignalId)
    }

    /// Signal ids of a given kind.
    pub fn signals_of_kind(&self, kind: SignalKind) -> Vec<SignalId> {
        self.signals()
            .filter(|&s| self.signal_kind(s) == kind)
            .collect()
    }

    /// Renders an event as `name+` / `name-`.
    pub fn event_name(&self, event: SignalEvent) -> String {
        format!("{}{}", self.signal_name(event.signal), event.edge.suffix())
    }

    /// Adds a transition labelled with `event` and returns its id.
    ///
    /// Multiple transitions may carry the same event (the `.g` format's
    /// `a+/1`, `a+/2` instances).
    pub fn transition(&mut self, event: SignalEvent) -> TransitionId {
        let occurrence = self
            .labels
            .iter()
            .filter(|l| l.event() == Some(event))
            .count();
        let base = self.event_name(event);
        let name = if occurrence == 0 {
            base
        } else {
            format!("{base}/{occurrence}")
        };
        let id = self.net.add_transition(name);
        self.labels.push(TransitionLabel::Event(event));
        id
    }

    /// Adds a transition for signal `signal` with edge `edge`.
    pub fn transition_for(&mut self, signal: SignalId, edge: Edge) -> TransitionId {
        self.transition(SignalEvent::new(signal, edge))
    }

    /// Adds a silent (dummy/ε) transition with the given diagnostic name.
    pub fn silent(&mut self, name: impl Into<String>) -> TransitionId {
        let id = self.net.add_transition(name);
        self.labels.push(TransitionLabel::Silent);
        id
    }

    /// Label of `transition`.
    pub fn label(&self, transition: TransitionId) -> TransitionLabel {
        self.labels[transition.index()]
    }

    /// Adds an explicit place (needed for choice) and returns its id.
    pub fn add_place(&mut self, name: impl Into<String>) -> PlaceId {
        let id = self.net.add_place(name);
        self.initial_tokens.push(0);
        id
    }

    /// Connects `from → to` through a fresh implicit place.
    ///
    /// Returns the created place.
    pub fn arc(&mut self, from: TransitionId, to: TransitionId) -> PlaceId {
        let name = format!(
            "<{},{}>",
            self.net.transition_name(from),
            self.net.transition_name(to)
        );
        let place = self.add_place(name);
        self.net.add_arc_tp(from, place, 1);
        self.net.add_arc_pt(place, to, 1);
        place
    }

    /// Like [`Stg::arc`] but the implicit place carries one initial token.
    pub fn marked_arc(&mut self, from: TransitionId, to: TransitionId) -> PlaceId {
        let place = self.arc(from, to);
        self.initial_tokens[place.index()] = 1;
        place
    }

    /// Adds a transition → place arc (for explicit places).
    pub fn arc_to_place(&mut self, from: TransitionId, place: PlaceId) {
        self.net.add_arc_tp(from, place, 1);
    }

    /// Adds a place → transition arc (for explicit places).
    pub fn arc_from_place(&mut self, place: PlaceId, to: TransitionId) {
        self.net.add_arc_pt(place, to, 1);
    }

    /// Sets the initial token count of `place`.
    pub fn set_tokens(&mut self, place: PlaceId, tokens: u16) {
        self.initial_tokens[place.index()] = tokens;
    }

    /// The initial marking.
    pub fn initial_marking(&self) -> Marking {
        Marking::from_tokens(self.initial_tokens.clone())
    }

    /// Forces the initial value of `signal` instead of letting reachability
    /// analysis infer it from the first edge encountered.
    pub fn set_initial_value(&mut self, signal: SignalId, value: bool) {
        self.initial_values[signal.index()] = Some(value);
    }

    /// The explicitly-set initial value of `signal`, if any.
    pub fn initial_value(&self, signal: SignalId) -> Option<bool> {
        self.initial_values[signal.index()]
    }

    /// All transitions labelled with an edge of `signal`.
    pub fn transitions_of(&self, signal: SignalId) -> Vec<TransitionId> {
        self.net
            .transitions()
            .filter(|&t| self.label(t).event().is_some_and(|ev| ev.signal == signal))
            .collect()
    }

    /// All transitions labelled with exactly `event`.
    pub fn transitions_labelled(&self, event: SignalEvent) -> Vec<TransitionId> {
        self.net
            .transitions()
            .filter(|&t| self.label(t).event() == Some(event))
            .collect()
    }

    /// Parses an event name such as `req+` or `ack-` against the signal
    /// table.
    ///
    /// # Errors
    ///
    /// Returns [`StgError::UnknownSignal`] when the base name is not
    /// declared, or a [`StgError::Parse`]-style error for a missing suffix
    /// (reported as `UnknownSignal` with the raw text).
    pub fn parse_event(&self, text: &str) -> Result<SignalEvent, StgError> {
        let (base, edge) =
            split_event_name(text).ok_or_else(|| StgError::UnknownSignal(text.to_string()))?;
        let signal = self
            .signal_by_name(base)
            .ok_or_else(|| StgError::UnknownSignal(base.to_string()))?;
        Ok(SignalEvent::new(signal, edge))
    }

    /// Human-readable description of a transition (event name or dummy
    /// name).
    pub fn describe_transition(&self, transition: TransitionId) -> String {
        self.net.transition_name(transition).to_string()
    }
}

impl fmt::Display for Stg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "stg {} :", self.name)?;
        writeln!(
            f,
            "  signals: {}",
            self.signals
                .iter()
                .map(|s| format!("{}:{}", s.name, s.kind))
                .collect::<Vec<_>>()
                .join(" ")
        )?;
        writeln!(
            f,
            "  transitions: {}, places: {}",
            self.net.transition_count(),
            self.net.place_count()
        )
    }
}

/// Splits `a+/2` into (`a`, [`Edge::Rise`]); the `/k` instance suffix is
/// ignored. Returns `None` when no `+`/`-` is present.
pub fn split_event_name(text: &str) -> Option<(&str, Edge)> {
    let core = match text.find('/') {
        Some(slash) => &text[..slash],
        None => text,
    };
    if let Some(base) = core.strip_suffix('+') {
        Some((base, Edge::Rise))
    } else {
        core.strip_suffix('-').map(|base| (base, Edge::Fall))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn handshake() -> (Stg, SignalId, SignalId) {
        let mut stg = Stg::new("hs");
        let a = stg.add_signal("a", SignalKind::Input).unwrap();
        let b = stg.add_signal("b", SignalKind::Output).unwrap();
        let ap = stg.transition_for(a, Edge::Rise);
        let bp = stg.transition_for(b, Edge::Rise);
        let am = stg.transition_for(a, Edge::Fall);
        let bm = stg.transition_for(b, Edge::Fall);
        stg.arc(ap, bp);
        stg.arc(bp, am);
        stg.arc(am, bm);
        stg.marked_arc(bm, ap);
        (stg, a, b)
    }

    #[test]
    fn duplicate_signal_rejected() {
        let mut stg = Stg::new("x");
        stg.add_signal("a", SignalKind::Input).unwrap();
        let err = stg.add_signal("a", SignalKind::Output).unwrap_err();
        assert_eq!(err, StgError::DuplicateSignal("a".into()));
    }

    #[test]
    fn transition_names_and_instances() {
        let mut stg = Stg::new("x");
        let a = stg.add_signal("a", SignalKind::Output).unwrap();
        let t1 = stg.transition_for(a, Edge::Rise);
        let t2 = stg.transition_for(a, Edge::Rise);
        assert_eq!(stg.net().transition_name(t1), "a+");
        assert_eq!(stg.net().transition_name(t2), "a+/1");
        assert_eq!(stg.transitions_of(a).len(), 2);
    }

    #[test]
    fn initial_marking_follows_marked_arcs() {
        let (stg, _, _) = handshake();
        let m = stg.initial_marking();
        assert_eq!(m.total_tokens(), 1);
        let enabled = stg.net().enabled(&m);
        assert_eq!(enabled.len(), 1);
        assert_eq!(stg.net().transition_name(enabled[0]), "a+");
    }

    #[test]
    fn parse_event_resolves_names() {
        let (stg, a, b) = handshake();
        assert_eq!(stg.parse_event("a+").unwrap(), SignalEvent::rise(a));
        assert_eq!(stg.parse_event("b-").unwrap(), SignalEvent::fall(b));
        assert_eq!(stg.parse_event("b-/3").unwrap(), SignalEvent::fall(b));
        assert!(matches!(
            stg.parse_event("zz+"),
            Err(StgError::UnknownSignal(_))
        ));
        assert!(matches!(
            stg.parse_event("a"),
            Err(StgError::UnknownSignal(_))
        ));
    }

    #[test]
    fn split_event_name_handles_instances() {
        assert_eq!(split_event_name("x+"), Some(("x", Edge::Rise)));
        assert_eq!(split_event_name("x-/2"), Some(("x", Edge::Fall)));
        assert_eq!(split_event_name("x"), None);
        assert_eq!(split_event_name("p12"), None);
    }

    #[test]
    fn silent_transitions_have_no_event() {
        let mut stg = Stg::new("x");
        let eps = stg.silent("eps");
        assert_eq!(stg.label(eps), TransitionLabel::Silent);
        assert_eq!(stg.label(eps).event(), None);
    }

    #[test]
    fn signals_of_kind_partitions_table() {
        let (stg, a, b) = handshake();
        assert_eq!(stg.signals_of_kind(SignalKind::Input), vec![a]);
        assert_eq!(stg.signals_of_kind(SignalKind::Output), vec![b]);
        assert!(stg.signals_of_kind(SignalKind::Internal).is_empty());
    }

    #[test]
    fn content_hash_tracks_structure_not_names() {
        let build = |marked: bool| {
            let mut stg = Stg::new("h");
            let a = stg.add_signal("a", SignalKind::Input).unwrap();
            let b = stg.add_signal("b", SignalKind::Output).unwrap();
            let ap = stg.transition_for(a, Edge::Rise);
            let bp = stg.transition_for(b, Edge::Rise);
            stg.arc(ap, bp);
            if marked {
                stg.marked_arc(bp, ap);
            } else {
                stg.arc(bp, ap);
            }
            stg
        };
        let base = build(true);
        assert_eq!(base.content_hash(), build(true).content_hash());
        assert_ne!(
            base.content_hash(),
            build(false).content_hash(),
            "initial marking is content"
        );
        let mut renamed = build(true);
        renamed.set_name("other");
        assert_eq!(base.content_hash(), renamed.content_hash());
        let mut forced = build(true);
        let a = forced.signal_by_name("a").unwrap();
        forced.set_initial_value(a, true);
        assert_ne!(
            base.content_hash(),
            forced.content_hash(),
            "forced initial values are content"
        );
    }

    #[test]
    fn explicit_places_support_choice() {
        let mut stg = Stg::new("choice");
        let a = stg.add_signal("a", SignalKind::Input).unwrap();
        let b = stg.add_signal("b", SignalKind::Input).unwrap();
        let ap = stg.transition_for(a, Edge::Rise);
        let bp = stg.transition_for(b, Edge::Rise);
        let p = stg.add_place("choice");
        stg.set_tokens(p, 1);
        stg.arc_from_place(p, ap);
        stg.arc_from_place(p, bp);
        let m = stg.initial_marking();
        assert_eq!(stg.net().enabled(&m).len(), 2);
        assert!(!stg.net().is_marked_graph());
    }
}
