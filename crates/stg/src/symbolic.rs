//! Symbolic (BDD-based) reachability for safe nets.
//!
//! The explicit analyser in [`crate::reach`] enumerates markings one by
//! one; for the paper's controllers that is plenty. This module provides
//! the classic alternative — markings as Boolean vectors (one variable
//! per place), reachable sets as BDDs, breadth-first image computation —
//! so the two can be compared head to head (the state-space-scaling
//! ablation in `rt-bench`'s `synthesis` bench).
//!
//! The BFS is *frontier-based*: each iteration images only the set of
//! markings discovered in the previous iteration (`frontier`), not the
//! whole accumulated reachable set, so work per iteration tracks the
//! wavefront instead of re-exploring everything already known. This
//! pairs with the persistent operation cache in [`rt_boolean::Bdd`]: the
//! per-transition `enabled` constraints and partially-overlapping
//! frontiers hit the same `(op, lhs, rhs)` keys across iterations, so
//! repeated sub-conjunctions and cofactors resolve as single cache
//! lookups instead of fresh traversals.
//!
//! There are two entry points:
//!
//! * [`reach_symbolic`] — the historical one-shot API: builds a fresh
//!   manager per call and throws it away;
//! * [`reach_symbolic_in`] — runs inside a **caller-owned manager**.
//!   Because node ids are never garbage-collected, the unique table and
//!   the persistent apply/cofactor caches stay valid across calls: a
//!   re-exploration of the same (or a structurally similar) net resolves
//!   almost entirely out of cache. [`crate::engine::ReachEngine`] builds
//!   its long-lived symbolic backend on this entry point.
//!
//! Only *safe* (1-bounded) nets are supported: a marking is then exactly
//! a set of places. Nets of any width are accepted — place *i* maps to
//! BDD variable *i*, and the manager is widened on demand via
//! [`rt_boolean::Bdd::ensure_vars`], so > 64-place nets (the `W2`/`W4`/
//! `Big` packed-marking territory of [`crate::marking`]) work
//! transparently.

use rt_boolean::bdd::NodeId;
use rt_boolean::Bdd;

use crate::error::StgError;
use crate::stg::Stg;

/// Result of a symbolic exploration.
#[derive(Debug, Clone)]
pub struct SymbolicReach {
    /// Number of reachable markings (model count of the reachable set).
    pub markings: u64,
    /// Breadth-first iterations to the fixpoint.
    pub iterations: usize,
    /// Live BDD nodes at the end (memory proxy). For a reused manager
    /// this counts everything the manager holds, not just this call.
    pub bdd_nodes: usize,
    /// The reachable set itself, valid for the manager the call ran in.
    /// With [`reach_symbolic_in`] the caller can evaluate membership
    /// (e.g. [`rt_boolean::Bdd::evaluate_words`] on packed markings) or
    /// compose further images.
    pub set: NodeId,
}

/// Computes the reachable markings of `stg`'s net symbolically in a
/// fresh, throwaway manager.
///
/// # Errors
///
/// Propagates every failure mode of [`reach_symbolic_in`].
pub fn reach_symbolic(stg: &Stg) -> Result<SymbolicReach, StgError> {
    let mut bdd = Bdd::new(stg.net().place_count());
    reach_symbolic_in(stg, &mut bdd)
}

/// Computes the reachable markings of `stg`'s net symbolically inside
/// `bdd`, widening the manager's variable universe to the net's place
/// count if needed.
///
/// Reusing one manager across calls turns the per-transition `enabled`
/// constraints and the image subcomputations of a repeated net into
/// cache hits; see the module docs. The reported marking count is taken
/// over the *net's* place universe ([`Bdd::satisfy_count_over`]), so it
/// is independent of how wide the shared manager has grown.
///
/// # Errors
///
/// Returns [`StgError::StateLimitExceeded`] when the fixpoint has not
/// converged after 10 000 image iterations (a diverging or enormous
/// net).
pub fn reach_symbolic_in(stg: &Stg, bdd: &mut Bdd) -> Result<SymbolicReach, StgError> {
    let net = stg.net();
    let places = net.place_count();
    bdd.ensure_vars(places);

    // Initial set: the exact initial marking as a minterm over places.
    let initial_marking = stg.initial_marking();
    let mut initial = bdd.constant(true);
    for p in net.places() {
        let var = if initial_marking.tokens(p) > 0 {
            bdd.var(p.index())
        } else {
            bdd.nvar(p.index())
        };
        initial = bdd.and(initial, var);
    }

    // Per-transition image: S_t = (∃ pre,post . S ∧ enabled_t) ∧
    // (pre = 0) ∧ (post = 1). For safe nets this is exact.
    struct TransImage {
        pre: Vec<usize>,
        post: Vec<usize>,
        enabled: NodeId,
    }
    let mut images = Vec::new();
    for t in net.transitions() {
        let pre: Vec<usize> = net.preset(t).iter().map(|a| a.place.index()).collect();
        let post: Vec<usize> = net.postset(t).iter().map(|a| a.place.index()).collect();
        let mut enabled = bdd.constant(true);
        for &p in &pre {
            let v = bdd.var(p);
            enabled = bdd.and(enabled, v);
        }
        // Safeness side condition: a produced place must be empty unless
        // it is also consumed (else the net would go 2-bounded; explicit
        // analysis reports Unbounded — symbolically we simply do not
        // generate the successor, keeping the analyses comparable only
        // on safe nets).
        for &p in &post {
            if !pre.contains(&p) {
                let nv = bdd.nvar(p);
                enabled = bdd.and(enabled, nv);
            }
        }
        images.push(TransImage { pre, post, enabled });
    }

    let mut reached = initial;
    let mut frontier = initial;
    let mut iterations = 0;
    loop {
        iterations += 1;
        let mut next = bdd.constant(false);
        for image in &images {
            let mut fired = bdd.and(frontier, image.enabled);
            if fired == bdd.constant(false) {
                continue;
            }
            for &p in image.pre.iter().chain(image.post.iter()) {
                fired = bdd.exists(fired, p);
            }
            for &p in &image.pre {
                if !image.post.contains(&p) {
                    let nv = bdd.nvar(p);
                    fired = bdd.and(fired, nv);
                }
            }
            for &p in &image.post {
                let v = bdd.var(p);
                fired = bdd.and(fired, v);
            }
            next = bdd.or(next, fired);
        }
        let not_reached = bdd.not(reached);
        let fresh = bdd.and(next, not_reached);
        if fresh == bdd.constant(false) {
            break;
        }
        reached = bdd.or(reached, fresh);
        frontier = fresh;
        if iterations > 10_000 {
            return Err(StgError::StateLimitExceeded(1 << 20));
        }
    }

    Ok(SymbolicReach {
        markings: bdd.satisfy_count_over(reached, places),
        iterations,
        bdd_nodes: bdd.node_count(),
        set: reached,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::models;
    use crate::reach::explore;

    #[test]
    fn symbolic_agrees_with_explicit_on_the_paper_models() {
        for (name, stg) in [
            ("handshake", models::handshake_stg()),
            ("fifo", models::fifo_stg()),
            ("fifo_csc", models::fifo_stg_csc()),
            ("celement", models::celement_stg()),
            ("chain3", models::chain_stg(3)),
        ] {
            let explicit = explore(&stg).unwrap_or_else(|e| panic!("{name}: {e}"));
            let symbolic = reach_symbolic(&stg).unwrap_or_else(|e| panic!("{name}: {e}"));
            assert_eq!(
                symbolic.markings,
                explicit.state_count() as u64,
                "{name}: symbolic vs explicit"
            );
        }
    }

    #[test]
    fn symbolic_agrees_on_rings() {
        for (n, tokens) in [(3usize, 1usize), (4, 1), (5, 2), (6, 2)] {
            let stg = models::ring_stg(n, tokens);
            let explicit = explore(&stg).expect("explores");
            let symbolic = reach_symbolic(&stg).expect("symbolic explores");
            assert_eq!(symbolic.markings, explicit.state_count() as u64, "ring {n}/{tokens}");
        }
    }

    #[test]
    fn iteration_count_tracks_diameter() {
        let stg = models::chain_stg(4);
        let result = reach_symbolic(&stg).expect("explores");
        // The chain is strictly sequential: BFS depth = cycle length.
        assert!(result.iterations >= 8, "got {}", result.iterations);
        assert!(result.bdd_nodes > 2);
    }

    #[test]
    fn corpus_entries_agree_too() {
        for (name, text) in crate::corpus::all() {
            let stg = crate::corpus::parse(text).expect("parses");
            let explicit = explore(&stg).unwrap_or_else(|e| panic!("{name}: {e}"));
            let symbolic = reach_symbolic(&stg).unwrap_or_else(|e| panic!("{name}: {e}"));
            assert_eq!(symbolic.markings, explicit.state_count() as u64, "{name}");
        }
    }

    #[test]
    fn shared_manager_reproduces_fresh_results() {
        // One manager across the whole model sweep: counts and the sets
        // themselves must match the fresh-manager runs.
        let mut shared = Bdd::new(4);
        for (name, stg) in [
            ("handshake", models::handshake_stg()),
            ("fifo", models::fifo_stg()),
            ("celement", models::celement_stg()),
            ("fifo", models::fifo_stg()), // repeat: pure cache replay
        ] {
            let fresh = reach_symbolic(&stg).unwrap_or_else(|e| panic!("{name}: {e}"));
            let reused =
                reach_symbolic_in(&stg, &mut shared).unwrap_or_else(|e| panic!("{name}: {e}"));
            assert_eq!(fresh.markings, reused.markings, "{name}");
            assert_eq!(fresh.iterations, reused.iterations, "{name}");
        }
    }

    #[test]
    fn reachable_set_answers_membership() {
        let stg = models::handshake_stg();
        let mut bdd = Bdd::new(stg.net().place_count());
        let result = reach_symbolic_in(&stg, &mut bdd).expect("explores");
        let sg = explore(&stg).expect("explores");
        assert_eq!(sg.marking_layout().bits(), 1, "safe net packs 1 bit/place");
        for state in sg.states() {
            let packed = sg.packed_marking(state);
            assert!(
                bdd.evaluate_words(result.set, packed.words()),
                "explicitly reachable marking must be in the symbolic set"
            );
        }
    }
}
