//! Symbolic (BDD-based) reachability for safe nets.
//!
//! The explicit analyser in [`crate::reach`] enumerates markings one by
//! one; for the paper's controllers that is plenty. This module provides
//! the classic alternative — markings as Boolean vectors (one variable
//! per place), reachable sets as BDDs, breadth-first image computation —
//! so the two can be compared head to head (the state-space-scaling
//! ablation in `rt-bench`'s `synthesis` bench).
//!
//! The BFS is *frontier-based*: each iteration images only the set of
//! markings discovered in the previous iteration (`frontier`), not the
//! whole accumulated reachable set, so work per iteration tracks the
//! wavefront instead of re-exploring everything already known. This
//! pairs with the persistent operation cache in [`rt_boolean::Bdd`]: the
//! per-transition `enabled` constraints and partially-overlapping
//! frontiers hit the same `(op, lhs, rhs)` keys across iterations, so
//! repeated sub-conjunctions and cofactors resolve as single cache
//! lookups instead of fresh traversals.
//!
//! There are two entry points:
//!
//! * [`reach_symbolic`] — the historical one-shot API: builds a fresh
//!   manager per call and throws it away;
//! * [`reach_symbolic_in`] — runs inside a **caller-owned manager**.
//!   Because node ids are never garbage-collected, the unique table and
//!   the persistent apply/cofactor caches stay valid across calls: a
//!   re-exploration of the same (or a structurally similar) net resolves
//!   almost entirely out of cache. [`crate::engine::ReachEngine`] builds
//!   its long-lived symbolic backend on this entry point.
//!
//! Only *safe* (1-bounded) nets are supported: a marking is then exactly
//! a set of places. Nets of any width are accepted — the manager is
//! widened on demand via [`rt_boolean::Bdd::ensure_vars`], so > 64-place
//! nets (the `W2`/`W4`/`Big` packed-marking territory of
//! [`crate::marking`]) work transparently.
//!
//! ## Static variable ordering
//!
//! BDD size is exquisitely sensitive to the variable order, so the
//! order is now an explicit, *measured* choice ([`VarOrder`]) instead
//! of an accident. Three strategies were evaluated over the whole
//! corpus (fresh manager, total allocated nodes — see `bench_reach`'s
//! per-model `bdd_nodes` vs `bdd_nodes_by_index` fields):
//!
//! * [`VarOrder::ByIndex`] — the legacy order, place *i* ↦ variable
//!   *i* (fabric4x4 ~837k nodes, adder16_rt ~18.5k);
//! * [`VarOrder::BfsConnectivity`] — breadth-first traversal of the
//!   place–transition adjacency from the first marked place. Wins
//!   narrowly on a few `.g` models but interleaves all rows of
//!   torus-like fabrics at equal distance and loses badly there
//!   (fabric4x4 ~1.0M nodes). Kept for nets whose declaration order
//!   carries no locality (e.g. shuffled hand-written files);
//! * [`VarOrder::ReverseIndex`] — the **default**: declaration order
//!   reversed. In this codebase declaration order already *is* a
//!   connectivity order (generators and the `.g` parser emit places
//!   along the token flow), and placing the late-declared wrap/link
//!   places near the root was the consistent winner: fabric4x4
//!   ~780k nodes / −20% wall time, adder16_rt ~15.6k, `vme_read`
//!   566→398, `ring12_3` 108k→104k.
//!
//! Membership queries on a permuted set go through
//! [`SymbolicReach::contains`], which maps variables back to marking
//! bits ([`rt_boolean::Bdd::evaluate_mapped`]).
//!
//! ## Dynamic reordering
//!
//! [`VarOrder::Sift`] starts from the static `Auto` seed and lets the
//! fixpoint reorder itself: whenever the manager grows past a
//! configurable factor since the last check (see
//! [`crate::reach::ExploreOptions::reorder_growth`]), a deterministic
//! Rudell sifting pass ([`rt_boolean::Bdd::sift`]) runs at the
//! iteration boundary with the fixpoint's live roots pinned. Because
//! node ids keep denoting the same functions across a reorder, the
//! *results* (marking counts, membership, conflict sets) are identical
//! to an unreordered run — only diagram sizes and wall time change.
//! Setting the `RT_STG_FORCE_SIFT` environment variable (to anything
//! but `0`) upgrades every `Auto` order to `Sift`, which is how CI
//! keeps the reordering path covered by the standard agreement suites.

use std::sync::OnceLock;
use std::time::Instant;

use rt_boolean::bdd::NodeId;
use rt_boolean::Bdd;

use crate::budget::Budget;
use crate::error::StgError;
use crate::petri::PlaceId;
use crate::reach::ExploreOptions;
use crate::stg::Stg;

pub mod csc;

/// Per-iteration budget poll shared by the symbolic fixpoints (here and
/// in [`csc`]): injected faults first (compiled out unless the
/// `fault-injection` feature is on), then cancellation/deadline, then
/// the manager footprint against both the budget's node ceiling and any
/// ceiling installed on the manager itself
/// ([`Bdd::set_node_budget`]), then the iteration ceiling. `iterations`
/// counts *completed* image steps (0-based at the first poll).
pub(crate) fn iteration_budget_check(
    bdd: &Bdd,
    budget: &Budget,
    iterations: usize,
) -> Option<StgError> {
    if let Some(error) = crate::faults::symbolic_iteration_fault(iterations) {
        return Some(error);
    }
    if budget.cancelled() {
        return Some(StgError::Cancelled);
    }
    let footprint = bdd.footprint();
    if bdd.over_budget() || budget.max_bdd_nodes.is_some_and(|max| footprint > max) {
        return Some(StgError::NodeBudgetExceeded { nodes: footprint });
    }
    if iterations >= budget.effective_max_iterations() {
        return Some(StgError::IterationLimitExceeded { iterations });
    }
    None
}

/// Module-level alias of [`VarOrder::AUTO_REVERSE_MIN_PLACES`], kept
/// for callers that imported the threshold before it moved onto the
/// type.
pub const AUTO_REVERSE_MIN_PLACES: usize = VarOrder::AUTO_REVERSE_MIN_PLACES;

/// Static place → BDD-variable ordering strategy for a symbolic run.
/// See the module docs for the corpus-wide measurements behind the
/// default.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum VarOrder {
    /// Legacy order: place *i* is BDD variable *i*.
    ByIndex,
    /// Connectivity order: a breadth-first traversal of the net's
    /// place–transition adjacency, seeded at the first initially
    /// marked place, numbers places in visit order. Rebuilds locality
    /// for nets whose declaration order carries none.
    BfsConnectivity,
    /// Declaration order reversed — the measured corpus-wide winner
    /// on non-trivial nets (declaration order is itself a connectivity
    /// order here, and the reversal puts late-declared link/wrap
    /// places near the root).
    ReverseIndex,
    /// The default: [`VarOrder::ReverseIndex`] for nets with at least
    /// [`VarOrder::AUTO_REVERSE_MIN_PLACES`] places,
    /// [`VarOrder::ByIndex`] below that (reversal regressed `arbiter2`,
    /// the corpus's smallest shared-place net — see the constant's
    /// docs).
    #[default]
    Auto,
    /// Dynamic reordering: seed the variables with the `Auto` static
    /// order, then let the fixpoint run deterministic sifting passes
    /// whenever the manager crosses the growth trigger (see the
    /// module's *Dynamic reordering* section). Counts and membership
    /// are identical to the static orders; diagram sizes are not.
    Sift,
}

impl VarOrder {
    /// Place count below which [`VarOrder::Auto`] resolves to
    /// [`VarOrder::ByIndex`] instead of [`VarOrder::ReverseIndex`].
    ///
    /// Measured over the corpus snapshot (`BENCH_reach.json`,
    /// `bdd_nodes` vs `bdd_nodes_by_index`): `ReverseIndex` wins or
    /// ties everywhere except `arbiter2` (9 places, 344 → 398 nodes —
    /// its shared `me` place is declared mid-net, so reversing
    /// declaration order buries it). Every model it beats `ByIndex` on
    /// by more than a handful of nodes (`fifo` 651 → 572, `vme_read`
    /// 566 → 398, `chain4` 300 → 279) has ≥ 10 places; below that the
    /// reversal saves at most ~8 nodes (`celement` 235 → 227), so
    /// index order is the safer default for tiny nets.
    pub const AUTO_REVERSE_MIN_PLACES: usize = 10;

    /// The concrete *static* strategy seeding a run under this order
    /// for a net with `places` places: identity for the named static
    /// strategies, the measured size-based choice for
    /// [`VarOrder::Auto`], and the `Auto` resolution for
    /// [`VarOrder::Sift`] (whose reordering then moves variables away
    /// from the seed). Never returns `Auto` or `Sift`.
    pub fn resolved_for(self, places: usize) -> VarOrder {
        match self {
            VarOrder::Auto | VarOrder::Sift => {
                if places >= VarOrder::AUTO_REVERSE_MIN_PLACES {
                    VarOrder::ReverseIndex
                } else {
                    VarOrder::ByIndex
                }
            }
            other => other,
        }
    }

    /// Whether this order reorders variables while the run executes.
    pub fn is_dynamic(self) -> bool {
        matches!(self, VarOrder::Sift)
    }
}

/// Whether `RT_STG_FORCE_SIFT` upgrades every [`VarOrder::Auto`] run
/// to [`VarOrder::Sift`] (CI coverage hook; read once per process).
fn force_sift() -> bool {
    static FORCE: OnceLock<bool> = OnceLock::new();
    *FORCE.get_or_init(|| std::env::var_os("RT_STG_FORCE_SIFT").is_some_and(|v| v != *"0"))
}

/// The order actually used for a run requested under `order`:
/// explicit choices are respected, `Auto` is upgraded to `Sift` when
/// the force-sift environment hook is set.
pub(crate) fn effective_order(order: VarOrder) -> VarOrder {
    if order == VarOrder::Auto && force_sift() {
        VarOrder::Sift
    } else {
        order
    }
}

/// Mid-fixpoint reorder trigger: runs a sifting pass when the manager
/// has grown past `growth ×` the node count at the last check (and is
/// at least `min_nodes` big). Shared by the reachability and CSC
/// fixpoints; disabled instances compile down to a no-op check.
pub(crate) struct ReorderCtl {
    enabled: bool,
    growth: f64,
    min_nodes: usize,
    last: usize,
    /// Manager size when the controller was armed — what the current
    /// run's *own* growth is measured against (a warm manager's
    /// pre-existing nodes must never look like growth).
    baseline: usize,
    /// Sifting passes run.
    pub sifts: usize,
    /// Total wall time spent sifting, in nanoseconds.
    pub sift_ns: u64,
}

impl ReorderCtl {
    pub(crate) fn disabled() -> Self {
        ReorderCtl {
            enabled: false,
            growth: f64::INFINITY,
            min_nodes: usize::MAX,
            last: 0,
            baseline: 0,
            sifts: 0,
            sift_ns: 0,
        }
    }

    /// A controller for `order` with the trigger knobs of `options`.
    pub(crate) fn for_order(order: VarOrder, options: &ExploreOptions) -> Self {
        if !order.is_dynamic() {
            return ReorderCtl::disabled();
        }
        ReorderCtl {
            enabled: true,
            growth: options.reorder_growth.max(1.1),
            min_nodes: options.reorder_min_nodes.max(2),
            last: 0,
            baseline: 0,
            sifts: 0,
            sift_ns: 0,
        }
    }

    /// Re-arms the growth baseline at the current manager size (called
    /// once when a fixpoint starts, so a warm manager's pre-existing
    /// nodes don't trip the trigger immediately). For an enabled
    /// controller this also opens a fresh [`Bdd::new_epoch`], so the
    /// collections a sift runs can only ever evict nodes *this* run
    /// created — whatever the caller already held in the manager is
    /// pinned as an older generation, keep list or not.
    pub(crate) fn arm(&mut self, bdd: &mut Bdd) {
        if self.enabled {
            bdd.new_epoch();
        }
        self.baseline = bdd.node_count();
        self.last = self.baseline.max(self.min_nodes);
    }

    /// Polls the trigger; when it fires, sifts with `keep` pinned
    /// (`group_of_var` selects block granularity, `None` = per
    /// variable) and re-arms at the post-sift size.
    pub(crate) fn maybe_sift(&mut self, bdd: &mut Bdd, keep: &[NodeId], groups: Option<&[u32]>) {
        if !self.enabled {
            return;
        }
        let nodes = bdd.node_count();
        if nodes < self.min_nodes || (nodes as f64) < self.last as f64 * self.growth {
            return;
        }
        let start = Instant::now();
        match groups {
            Some(g) => bdd.sift_grouped(keep, g),
            None => bdd.sift(keep),
        };
        self.sift_ns += start.elapsed().as_nanos() as u64;
        self.sifts += 1;
        // Re-arm at the size that *fired* this sift, not at the
        // collected floor: a pass collects every fixpoint intermediate,
        // so the post-sift count is artificially tiny and re-arming
        // there would re-trigger after a single image step. Demanding
        // `growth ×` the previous trigger instead caps a fixpoint at
        // logarithmically many passes.
        self.last = nodes.max(self.min_nodes);
    }
}

/// Result of a symbolic exploration.
#[derive(Debug, Clone)]
pub struct SymbolicReach {
    /// Number of reachable markings (model count of the reachable set).
    pub markings: u64,
    /// Breadth-first iterations to the fixpoint.
    pub iterations: usize,
    /// Live BDD nodes at the end (memory proxy). For a reused manager
    /// this counts everything the manager holds, not just this call.
    pub bdd_nodes: usize,
    /// The reachable set itself, valid for the manager the call ran in.
    /// With [`reach_symbolic_in`] the caller can test membership via
    /// [`SymbolicReach::contains`] or compose further images.
    pub set: NodeId,
    /// The place behind each BDD variable (`place_of_var[v]` is the
    /// place index variable `v` encodes) — the inverse of the static
    /// order the run was built under. Identity for
    /// [`VarOrder::ByIndex`]. Dynamic reordering does not change this
    /// map: it permutes variable *levels*, not variable identities.
    pub place_of_var: Vec<u32>,
    /// Largest live node count observed at any iteration boundary —
    /// the run's memory high-water mark, where `bdd_nodes` only shows
    /// the (post-reorder, post-collection) end state.
    pub peak_bdd_nodes: usize,
    /// Sifting passes the run triggered (0 for static orders).
    pub sifts: usize,
    /// Wall time spent inside sifting passes, in nanoseconds.
    pub sift_ns: u64,
}

impl SymbolicReach {
    /// Whether the packed marking `words` (bit *i* of the stream =
    /// place *i* marked, exactly [`crate::marking::PackedMarking::words`]
    /// on a safe-net layout) belongs to the reachable set. `bdd` must
    /// be the manager the run executed in.
    pub fn contains(&self, bdd: &Bdd, words: &[u64]) -> bool {
        bdd.evaluate_mapped(self.set, words, &self.place_of_var)
    }
}

/// Computes the BFS-connectivity variable order for `stg`: returns
/// `var_of` with `var_of[place] = variable`. The traversal is seeded at
/// the **first** initially marked place only — a single seed grows one
/// contiguous front, where seeding every marked place at once was
/// measured to interleave whole regions by distance and inflate the
/// diagrams (see the module docs). Places the seed's component never
/// reaches keep declaration order at the tail. Deterministic (ties
/// break by index), so repeated runs of the same net replay the
/// persistent manager's caches exactly.
fn bfs_connectivity_order(stg: &Stg) -> Vec<u32> {
    let net = stg.net();
    let places = net.place_count();
    let initial = stg.initial_marking();
    let mut var_of: Vec<u32> = vec![u32::MAX; places];
    let mut next_var = 0u32;
    let mut stack: std::collections::VecDeque<PlaceId> = std::collections::VecDeque::new();
    let mut visit =
        |p: PlaceId, var_of: &mut Vec<u32>, stack: &mut std::collections::VecDeque<PlaceId>| {
            if var_of[p.index()] == u32::MAX {
                var_of[p.index()] = next_var;
                next_var += 1;
                stack.push_back(p);
            }
        };
    if let Some(seed) = net.places().find(|&p| initial.tokens(p) > 0) {
        visit(seed, &mut var_of, &mut stack);
    }
    while let Some(p) = stack.pop_front() {
        // Successor places through every transition consuming p, then
        // predecessor places through every transition producing p: one
        // hop of the token game in each direction.
        for &t in net.consumers(p) {
            for arc in net.postset(t) {
                visit(arc.place, &mut var_of, &mut stack);
            }
            for arc in net.preset(t) {
                visit(arc.place, &mut var_of, &mut stack);
            }
        }
        for &t in net.producers(p) {
            for arc in net.preset(t) {
                visit(arc.place, &mut var_of, &mut stack);
            }
        }
    }
    // Disconnected / never-marked places keep index order at the tail.
    for slot in var_of.iter_mut() {
        if *slot == u32::MAX {
            *slot = next_var;
            next_var += 1;
        }
    }
    var_of
}

/// Computes the reachable markings of `stg`'s net symbolically in a
/// fresh, throwaway manager.
///
/// # Errors
///
/// Propagates every failure mode of [`reach_symbolic_in`].
pub fn reach_symbolic(stg: &Stg) -> Result<SymbolicReach, StgError> {
    let mut bdd = Bdd::new(stg.net().place_count());
    reach_symbolic_in(stg, &mut bdd)
}

/// Computes the reachable markings of `stg`'s net symbolically inside
/// `bdd` under the default static [`VarOrder`]
/// ([`VarOrder::ReverseIndex`]), widening the manager's variable
/// universe to the net's place count if needed.
///
/// Reusing one manager across calls turns the per-transition `enabled`
/// constraints and the image subcomputations of a repeated net into
/// cache hits; see the module docs. The reported marking count is taken
/// over the *net's* place universe ([`Bdd::satisfy_count_over`]), so it
/// is independent of how wide the shared manager has grown.
///
/// # Errors
///
/// Returns [`StgError::IterationLimitExceeded`] when the fixpoint has
/// not converged after 10 000 image iterations (a diverging or enormous
/// net).
pub fn reach_symbolic_in(stg: &Stg, bdd: &mut Bdd) -> Result<SymbolicReach, StgError> {
    reach_symbolic_in_ordered(stg, bdd, VarOrder::default())
}

/// [`reach_symbolic_in`] under an explicit [`Budget`]: the fixpoint
/// polls cancellation, the manager-footprint ceiling and the iteration
/// ceiling once per image step, so an overrun stops within one
/// iteration and never leaves a half-built structure (the manager's
/// unique table only ever grows by *complete* nodes).
///
/// # Errors
///
/// As [`reach_symbolic_in`], plus [`StgError::Cancelled`] and
/// [`StgError::NodeBudgetExceeded`] when the budget triggers.
pub fn reach_symbolic_in_budgeted(
    stg: &Stg,
    bdd: &mut Bdd,
    budget: &Budget,
) -> Result<SymbolicReach, StgError> {
    let options = ExploreOptions {
        budget: budget.clone(),
        ..ExploreOptions::default()
    };
    reach_symbolic_with(stg, bdd, &options)
}

/// [`reach_symbolic_in`] under an explicit [`VarOrder`] — static or
/// dynamic ([`VarOrder::Sift`] runs with the default reorder knobs of
/// [`ExploreOptions`]; use [`reach_symbolic_with`] to tune them).
///
/// # Errors
///
/// Same as [`reach_symbolic_in`].
pub fn reach_symbolic_in_ordered(
    stg: &Stg,
    bdd: &mut Bdd,
    order: VarOrder,
) -> Result<SymbolicReach, StgError> {
    let options = ExploreOptions {
        var_order: order,
        ..ExploreOptions::default()
    };
    reach_symbolic_with(stg, bdd, &options)
}

/// [`reach_symbolic_in`] driven entirely by [`ExploreOptions`]: the
/// variable order (static or dynamic, `Auto` upgradeable by the
/// force-sift hook), the reorder trigger knobs and the budget all come
/// from `options`. This is the entry point
/// [`crate::engine::ReachEngine`] uses.
///
/// # Errors
///
/// Same as [`reach_symbolic_in_budgeted`].
pub fn reach_symbolic_with(
    stg: &Stg,
    bdd: &mut Bdd,
    options: &ExploreOptions,
) -> Result<SymbolicReach, StgError> {
    let order = effective_order(options.var_order);
    let var_of = place_order(stg, order);
    let mut reorder = ReorderCtl::for_order(order, options);
    fixpoint(stg, bdd, &var_of, &options.budget, &mut reorder)
}

/// The place → variable permutation `order` denotes for `stg`
/// (`Auto` resolved by place count). Shared with the signal-extended
/// layout of [`csc`].
pub(crate) fn place_order(stg: &Stg, order: VarOrder) -> Vec<u32> {
    let places = stg.net().place_count() as u32;
    match order.resolved_for(places as usize) {
        VarOrder::ByIndex => (0..places).collect(),
        VarOrder::BfsConnectivity => bfs_connectivity_order(stg),
        VarOrder::ReverseIndex => (0..places).rev().collect(),
        VarOrder::Auto | VarOrder::Sift => {
            unreachable!("resolved_for never returns Auto or Sift")
        }
    }
}

/// [`reach_symbolic_in`] under a caller-supplied static order:
/// `var_of[place] = BDD variable`. Must be a permutation of
/// `0..place_count`. This is the experimentation hook the named
/// [`VarOrder`] strategies are built on.
///
/// # Errors
///
/// Same as [`reach_symbolic_in`].
pub fn reach_symbolic_in_custom(
    stg: &Stg,
    bdd: &mut Bdd,
    var_of: &[u32],
) -> Result<SymbolicReach, StgError> {
    reach_symbolic_in_custom_budgeted(stg, bdd, var_of, &Budget::default())
}

/// [`reach_symbolic_in_custom`] under an explicit [`Budget`]; see
/// [`reach_symbolic_in_budgeted`] for the polling contract.
///
/// # Errors
///
/// Same as [`reach_symbolic_in_budgeted`].
pub fn reach_symbolic_in_custom_budgeted(
    stg: &Stg,
    bdd: &mut Bdd,
    var_of: &[u32],
    budget: &Budget,
) -> Result<SymbolicReach, StgError> {
    fixpoint(stg, bdd, var_of, budget, &mut ReorderCtl::disabled())
}

/// The frontier-based image fixpoint all `reach_symbolic*` entry
/// points funnel into; `reorder` injects the optional mid-fixpoint
/// sifting trigger (see the module's *Dynamic reordering* section).
fn fixpoint(
    stg: &Stg,
    bdd: &mut Bdd,
    var_of: &[u32],
    budget: &Budget,
    reorder: &mut ReorderCtl,
) -> Result<SymbolicReach, StgError> {
    let net = stg.net();
    let places = net.place_count();
    assert_eq!(var_of.len(), places, "order must cover every place");
    bdd.ensure_vars(places);

    // Initial set: the exact initial marking as a minterm over places.
    let initial_marking = stg.initial_marking();
    let mut initial = bdd.constant(true);
    for p in net.places() {
        let var = if initial_marking.tokens(p) > 0 {
            bdd.var(var_of[p.index()] as usize)
        } else {
            bdd.nvar(var_of[p.index()] as usize)
        };
        initial = bdd.and(initial, var);
    }

    // Per-transition image: S_t = (∃ pre,post . S ∧ enabled_t) ∧
    // (pre = 0) ∧ (post = 1). For safe nets this is exact.
    struct TransImage {
        pre: Vec<usize>,
        post: Vec<usize>,
        enabled: NodeId,
    }
    let mut images = Vec::new();
    for t in net.transitions() {
        let pre: Vec<usize> = net
            .preset(t)
            .iter()
            .map(|a| var_of[a.place.index()] as usize)
            .collect();
        let post: Vec<usize> = net
            .postset(t)
            .iter()
            .map(|a| var_of[a.place.index()] as usize)
            .collect();
        let mut enabled = bdd.constant(true);
        for &p in &pre {
            let v = bdd.var(p);
            enabled = bdd.and(enabled, v);
        }
        // Safeness side condition: a produced place must be empty unless
        // it is also consumed (else the net would go 2-bounded; explicit
        // analysis reports Unbounded — symbolically we simply do not
        // generate the successor, keeping the analyses comparable only
        // on safe nets).
        for &p in &post {
            if !pre.contains(&p) {
                let nv = bdd.nvar(p);
                enabled = bdd.and(enabled, nv);
            }
        }
        images.push(TransImage { pre, post, enabled });
    }

    let mut reached = initial;
    let mut frontier = initial;
    let mut iterations = 0;
    let mut peak = bdd.node_count();
    reorder.arm(bdd);
    loop {
        // Budget poll at the iteration boundary: `reached`/`frontier`
        // are complete sets from the previous step, so stopping here
        // never abandons a half-built structure.
        if let Some(error) = iteration_budget_check(bdd, budget, iterations) {
            return Err(error);
        }
        peak = peak.max(bdd.node_count());
        // Reorder (and collect garbage) only at the same safe points
        // the budget is polled at: every live id — the accumulated
        // set, the frontier, the per-transition constraints — is
        // pinned, and node ids keep their functions, so the iteration
        // resumes as if nothing happened, just on smaller diagrams.
        if reorder.enabled {
            let mut keep: Vec<NodeId> = vec![reached, frontier];
            keep.extend(images.iter().map(|image| image.enabled));
            reorder.maybe_sift(bdd, &keep, None);
        }
        iterations += 1;
        let mut next = bdd.constant(false);
        for image in &images {
            let mut fired = bdd.and(frontier, image.enabled);
            if fired == bdd.constant(false) {
                continue;
            }
            for &p in image.pre.iter().chain(image.post.iter()) {
                fired = bdd.exists(fired, p);
            }
            for &p in &image.pre {
                if !image.post.contains(&p) {
                    let nv = bdd.nvar(p);
                    fired = bdd.and(fired, nv);
                }
            }
            for &p in &image.post {
                let v = bdd.var(p);
                fired = bdd.and(fired, v);
            }
            next = bdd.or(next, fired);
        }
        let not_reached = bdd.not(reached);
        let fresh = bdd.and(next, not_reached);
        if fresh == bdd.constant(false) {
            break;
        }
        reached = bdd.or(reached, fresh);
        frontier = fresh;
    }

    // Invert the order for membership queries: variable v encodes
    // place place_of_var[v].
    let mut place_of_var = vec![0u32; places];
    for (place, &var) in var_of.iter().enumerate() {
        place_of_var[var as usize] = place as u32;
    }
    Ok(SymbolicReach {
        markings: bdd.satisfy_count_over(reached, places),
        iterations,
        bdd_nodes: bdd.node_count(),
        set: reached,
        place_of_var,
        peak_bdd_nodes: peak.max(bdd.node_count()),
        sifts: reorder.sifts,
        sift_ns: reorder.sift_ns,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::models;
    use crate::reach::explore;

    #[test]
    fn symbolic_agrees_with_explicit_on_the_paper_models() {
        for (name, stg) in [
            ("handshake", models::handshake_stg()),
            ("fifo", models::fifo_stg()),
            ("fifo_csc", models::fifo_stg_csc()),
            ("celement", models::celement_stg()),
            ("chain3", models::chain_stg(3)),
        ] {
            let explicit = explore(&stg).unwrap_or_else(|e| panic!("{name}: {e}"));
            let symbolic = reach_symbolic(&stg).unwrap_or_else(|e| panic!("{name}: {e}"));
            assert_eq!(
                symbolic.markings,
                explicit.state_count() as u64,
                "{name}: symbolic vs explicit"
            );
        }
    }

    #[test]
    fn symbolic_agrees_on_rings() {
        for (n, tokens) in [(3usize, 1usize), (4, 1), (5, 2), (6, 2)] {
            let stg = models::ring_stg(n, tokens);
            let explicit = explore(&stg).expect("explores");
            let symbolic = reach_symbolic(&stg).expect("symbolic explores");
            assert_eq!(
                symbolic.markings,
                explicit.state_count() as u64,
                "ring {n}/{tokens}"
            );
        }
    }

    #[test]
    fn iteration_count_tracks_diameter() {
        let stg = models::chain_stg(4);
        let result = reach_symbolic(&stg).expect("explores");
        // The chain is strictly sequential: BFS depth = cycle length.
        assert!(result.iterations >= 8, "got {}", result.iterations);
        assert!(result.bdd_nodes > 2);
    }

    #[test]
    fn corpus_entries_agree_too() {
        for (name, text) in crate::corpus::all() {
            let stg = crate::corpus::parse(text).expect("parses");
            let explicit = explore(&stg).unwrap_or_else(|e| panic!("{name}: {e}"));
            let symbolic = reach_symbolic(&stg).unwrap_or_else(|e| panic!("{name}: {e}"));
            assert_eq!(symbolic.markings, explicit.state_count() as u64, "{name}");
        }
    }

    #[test]
    fn shared_manager_reproduces_fresh_results() {
        // One manager across the whole model sweep: counts and the sets
        // themselves must match the fresh-manager runs.
        let mut shared = Bdd::new(4);
        for (name, stg) in [
            ("handshake", models::handshake_stg()),
            ("fifo", models::fifo_stg()),
            ("celement", models::celement_stg()),
            ("fifo", models::fifo_stg()), // repeat: pure cache replay
        ] {
            let fresh = reach_symbolic(&stg).unwrap_or_else(|e| panic!("{name}: {e}"));
            let reused =
                reach_symbolic_in(&stg, &mut shared).unwrap_or_else(|e| panic!("{name}: {e}"));
            assert_eq!(fresh.markings, reused.markings, "{name}");
            assert_eq!(fresh.iterations, reused.iterations, "{name}");
        }
    }

    #[test]
    fn reachable_set_answers_membership() {
        let stg = models::handshake_stg();
        let mut bdd = Bdd::new(stg.net().place_count());
        let result = reach_symbolic_in(&stg, &mut bdd).expect("explores");
        let sg = explore(&stg).expect("explores");
        assert_eq!(sg.marking_layout().bits(), 1, "safe net packs 1 bit/place");
        for state in sg.states() {
            let packed = sg.packed_marking(state);
            assert!(
                result.contains(&bdd, packed.words()),
                "explicitly reachable marking must be in the symbolic set"
            );
        }
    }

    #[test]
    fn every_static_order_agrees_on_counts_and_membership() {
        for (name, stg) in [
            ("fifo", models::fifo_stg()),
            ("celement", models::celement_stg()),
            ("ring8_2", models::ring_stg(8, 2)),
        ] {
            let sg = explore(&stg).expect("explores");
            for order in [
                VarOrder::ByIndex,
                VarOrder::BfsConnectivity,
                VarOrder::ReverseIndex,
            ] {
                let mut bdd = Bdd::new(stg.net().place_count());
                let r = reach_symbolic_in_ordered(&stg, &mut bdd, order)
                    .unwrap_or_else(|e| panic!("{name} {order:?}: {e}"));
                assert_eq!(r.markings, sg.state_count() as u64, "{name} {order:?}");
                for state in sg.states() {
                    let words = sg.packed_marking(state).words();
                    assert!(r.contains(&bdd, words), "{name} {order:?}: membership");
                }
            }
        }
    }

    #[test]
    fn bfs_order_is_a_permutation_and_identity_is_identity() {
        let stg = models::fifo_stg();
        let places = stg.net().place_count();
        let mut bdd = Bdd::new(places);
        let r =
            reach_symbolic_in_ordered(&stg, &mut bdd, VarOrder::BfsConnectivity).expect("explores");
        let mut seen = vec![false; places];
        for &p in &r.place_of_var {
            assert!(!seen[p as usize], "place {p} mapped twice");
            seen[p as usize] = true;
        }
        assert!(seen.iter().all(|&s| s), "every place mapped");

        let mut bdd2 = Bdd::new(places);
        let ri = reach_symbolic_in_ordered(&stg, &mut bdd2, VarOrder::ByIndex).expect("explores");
        assert_eq!(
            ri.place_of_var,
            (0..places as u32).collect::<Vec<_>>(),
            "by-index runs report the identity map"
        );
    }
}
