//! Symbolic (BDD-based) reachability for safe nets.
//!
//! The explicit analyser in [`crate::reach`] enumerates markings one by
//! one; for the paper's controllers that is plenty. This module provides
//! the classic alternative — markings as Boolean vectors (one variable
//! per place), reachable sets as BDDs, breadth-first image computation —
//! so the two can be compared head to head (the state-space-scaling
//! ablation in `rt-bench`'s `synthesis` bench).
//!
//! The BFS is *frontier-based*: each iteration images only the set of
//! markings discovered in the previous iteration (`frontier`), not the
//! whole accumulated reachable set, so work per iteration tracks the
//! wavefront instead of re-exploring everything already known. This
//! pairs with the persistent operation cache in [`rt_boolean::Bdd`]: the
//! per-transition `enabled` constraints and partially-overlapping
//! frontiers hit the same `(op, lhs, rhs)` keys across iterations, so
//! repeated sub-conjunctions and cofactors resolve as single cache
//! lookups instead of fresh traversals.
//!
//! Only *safe* (1-bounded) nets are supported: a marking is then exactly
//! a set of places.

use rt_boolean::bdd::NodeId;
use rt_boolean::Bdd;

use crate::error::StgError;
use crate::stg::Stg;

/// Result of a symbolic exploration.
#[derive(Debug, Clone)]
pub struct SymbolicReach {
    /// Number of reachable markings (model count of the reachable set).
    pub markings: u64,
    /// Breadth-first iterations to the fixpoint.
    pub iterations: usize,
    /// Live BDD nodes at the end (memory proxy).
    pub bdd_nodes: usize,
}

/// Computes the reachable markings of `stg`'s net symbolically.
///
/// # Errors
///
/// Returns [`StgError::TooManySignals`] when the net has more than 64
/// places (the BDD manager in `rt-boolean` indexes variables by `u64`
/// assignments in its tests; the manager itself has no hard limit, but
/// we keep the interface consistent with the explicit analyser).
pub fn reach_symbolic(stg: &Stg) -> Result<SymbolicReach, StgError> {
    let net = stg.net();
    if net.place_count() > 64 {
        return Err(StgError::TooManySignals(net.place_count()));
    }
    let places = net.place_count();
    let mut bdd = Bdd::new(places);

    // Initial set: the exact initial marking as a minterm over places.
    let initial_marking = stg.initial_marking();
    let mut initial = bdd.constant(true);
    for p in net.places() {
        let var = if initial_marking.tokens(p) > 0 {
            bdd.var(p.index())
        } else {
            bdd.nvar(p.index())
        };
        initial = bdd.and(initial, var);
    }

    // Per-transition image: S_t = (∃ pre,post . S ∧ enabled_t) ∧
    // (pre = 0) ∧ (post = 1). For safe nets this is exact.
    struct TransImage {
        pre: Vec<usize>,
        post: Vec<usize>,
        enabled: NodeId,
    }
    let mut images = Vec::new();
    for t in net.transitions() {
        let pre: Vec<usize> = net.preset(t).iter().map(|a| a.place.index()).collect();
        let post: Vec<usize> = net.postset(t).iter().map(|a| a.place.index()).collect();
        let mut enabled = bdd.constant(true);
        for &p in &pre {
            let v = bdd.var(p);
            enabled = bdd.and(enabled, v);
        }
        // Safeness side condition: a produced place must be empty unless
        // it is also consumed (else the net would go 2-bounded; explicit
        // analysis reports Unbounded — symbolically we simply do not
        // generate the successor, keeping the analyses comparable only
        // on safe nets).
        for &p in &post {
            if !pre.contains(&p) {
                let nv = bdd.nvar(p);
                enabled = bdd.and(enabled, nv);
            }
        }
        images.push(TransImage { pre, post, enabled });
    }

    let mut reached = initial;
    let mut frontier = initial;
    let mut iterations = 0;
    loop {
        iterations += 1;
        let mut next = bdd.constant(false);
        for image in &images {
            let mut fired = bdd.and(frontier, image.enabled);
            if fired == bdd.constant(false) {
                continue;
            }
            for &p in image.pre.iter().chain(image.post.iter()) {
                fired = bdd.exists(fired, p);
            }
            for &p in &image.pre {
                if !image.post.contains(&p) {
                    let nv = bdd.nvar(p);
                    fired = bdd.and(fired, nv);
                }
            }
            for &p in &image.post {
                let v = bdd.var(p);
                fired = bdd.and(fired, v);
            }
            next = bdd.or(next, fired);
        }
        let not_reached = bdd.not(reached);
        let fresh = bdd.and(next, not_reached);
        if fresh == bdd.constant(false) {
            break;
        }
        reached = bdd.or(reached, fresh);
        frontier = fresh;
        if iterations > 10_000 {
            return Err(StgError::StateLimitExceeded(1 << 20));
        }
    }

    Ok(SymbolicReach {
        markings: bdd.satisfy_count(reached),
        iterations,
        bdd_nodes: bdd.node_count(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::models;
    use crate::reach::explore;

    #[test]
    fn symbolic_agrees_with_explicit_on_the_paper_models() {
        for (name, stg) in [
            ("handshake", models::handshake_stg()),
            ("fifo", models::fifo_stg()),
            ("fifo_csc", models::fifo_stg_csc()),
            ("celement", models::celement_stg()),
            ("chain3", models::chain_stg(3)),
        ] {
            let explicit = explore(&stg).unwrap_or_else(|e| panic!("{name}: {e}"));
            let symbolic = reach_symbolic(&stg).unwrap_or_else(|e| panic!("{name}: {e}"));
            assert_eq!(
                symbolic.markings,
                explicit.state_count() as u64,
                "{name}: symbolic vs explicit"
            );
        }
    }

    #[test]
    fn symbolic_agrees_on_rings() {
        for (n, tokens) in [(3usize, 1usize), (4, 1), (5, 2), (6, 2)] {
            let stg = models::ring_stg(n, tokens);
            let explicit = explore(&stg).expect("explores");
            let symbolic = reach_symbolic(&stg).expect("symbolic explores");
            assert_eq!(symbolic.markings, explicit.state_count() as u64, "ring {n}/{tokens}");
        }
    }

    #[test]
    fn iteration_count_tracks_diameter() {
        let stg = models::chain_stg(4);
        let result = reach_symbolic(&stg).expect("explores");
        // The chain is strictly sequential: BFS depth = cycle length.
        assert!(result.iterations >= 8, "got {}", result.iterations);
        assert!(result.bdd_nodes > 2);
    }

    #[test]
    fn corpus_entries_agree_too() {
        for (name, text) in crate::corpus::all() {
            let stg = crate::corpus::parse(text).expect("parses");
            let explicit = explore(&stg).unwrap_or_else(|e| panic!("{name}: {e}"));
            let symbolic = reach_symbolic(&stg).unwrap_or_else(|e| panic!("{name}: {e}"));
            assert_eq!(symbolic.markings, explicit.state_count() as u64, "{name}");
        }
    }
}
