//! Symbolic complete-state-coding conflict detection.
//!
//! The explicit detector ([`crate::state_graph::StateGraph::csc_conflicts`])
//! needs the fully enumerated, binary-coded state graph; on nets past a
//! few dozen places that enumeration is the last explicit-only wall in
//! the encoding passes. This module detects (and counts, and witnesses)
//! CSC conflicts **without ever materializing a state graph**: the
//! reachable set, the signal codes and the conflict relation are all
//! BDDs in one (typically persistent, engine-owned) manager.
//!
//! ## Variable layout
//!
//! The diagram ranges over three interleaved groups of variables:
//!
//! * every **place** owns an adjacent *(unprimed, primed)* variable
//!   pair — the unprimed slot carries the reachability BFS, the primed
//!   slot carries the second state of the conflict pair space;
//! * every **signal** owns a *single, shared* code variable.
//!
//! Sharing the code variables between the two pair-space copies is the
//! load-bearing trick: the conflict relation needs "same code", and
//! with one set of code variables the conjunction `R(p, y) ∧ R(p', y)`
//! *is* the equality join — no primed code copy, no `⋀ yᵢ ↔ y'ᵢ`
//! constraint, and the product diagram stays synchronized on the code
//! prefix instead of squaring.
//!
//! Places follow the measured static order of [`super::VarOrder`]
//! (`Auto` by default); each signal's code variable is spliced directly
//! after its *anchor* place — the earliest-ordered place adjacent to
//! any of the signal's transitions — because a consistent signal's
//! value is a function of the tokens circulating through exactly those
//! places, and a code variable far from its support multiplies the
//! diagram.
//!
//! Roles are bound to *levels*, not raw variable indices: slot *i* of
//! the layout above is whatever variable currently sits at level *i*
//! of the manager (identical on a fresh manager, where levels are the
//! identity permutation). Under [`super::VarOrder::Sift`] the analysis
//! reorders dynamically — mid-fixpoint when the growth trigger of
//! [`ExploreOptions::reorder_growth`] fires, and once more right
//! before the pair space, which is the peak of the whole analysis.
//! Every sift moves each *(unprimed, primed)* pair as one block
//! ([`rt_boolean::Bdd::sift_grouped`]), so the primed twin stays
//! level-adjacent to its place and the `R(p, y) → R(p', y)` rename
//! stays monotone no matter how far the pairs travel.
//!
//! ## The conflict relation
//!
//! The BFS tracks codes transparently: firing an `a+`-labelled
//! transition existentially quantifies and re-sets signal `a`'s
//! variable alongside the pre/post places (and the enabling constraint
//! demands the source value, so an inconsistent specification is
//! *detected*, not silently re-encoded — see
//! [`csc_conflicts_symbolic_in`]'s errors). After the fixpoint, for an
//! implemented signal *j* with excitation sets `ER(j+)`, `ER(j-)`:
//!
//! ```text
//! implied_j = ER(j+) ∨ (y_j ∧ ¬ER(j-))          (the next-state value)
//! Conf_j    = R(p,y) ∧ R(p',y) ∧ implied_j(p,y) ∧ ¬implied_j(p',y)
//! ```
//!
//! Each satisfying assignment of `Conf_j` is an **ordered** pair of
//! distinct reachable states sharing a code and disagreeing on *j*'s
//! implied value, with the `1`-side first — exactly one assignment per
//! unordered explicit conflict, so `∑_j |Conf_j|` (by BDD model
//! counting) equals `StateGraph::csc_conflicts().len()` *exactly*, and
//! [`rt_boolean::Bdd::satisfy_one`] over any non-empty `Conf_j` yields
//! a concrete witness pair of packed markings
//! ([`CscWitness`]). `crates/stg/tests/csc_symbolic.rs` pins the
//! count-and-witness agreement across the corpus, wide models
//! included.
//!
//! Liveness side-conditions the encoding search needs ride along on
//! the same diagrams: deadlock freedom is `R ∧ ¬(⋁ enabled_t) = ∅`,
//! and strong connectivity is `R ⊆ B` for the backward fixpoint `B`
//! from the initial state (every reachable state can return).
//!
//! The detector caps at 64 signals (codes and witnesses are `u64`
//! streams, like the explicit graph's) but has **no place cap**: the
//! wide `W2`/`W4` corpus models run through the same entry points.

use std::time::Instant;

use rt_boolean::bdd::NodeId;
use rt_boolean::Bdd;

use crate::error::StgError;
use crate::marking::MarkingLayout;
use crate::reach::{infer_initial_code, ExploreOptions};
use crate::signal::{Edge, SignalId};
use crate::stg::{Stg, TransitionLabel};
use crate::symbolic::{effective_order, place_order, ReorderCtl, VarOrder};

/// A concrete CSC conflict extracted from the symbolic pair space: two
/// reachable markings sharing a binary code but disagreeing on the
/// implied value of `signal`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CscWitness {
    /// Packed marking of the state whose implied value of `signal` is 1
    /// (bit *p* of the stream = place *p* marked, the safe-net layout of
    /// [`crate::marking::PackedMarking::words`]).
    pub marking_a: Vec<u64>,
    /// Packed marking of the `implied = 0` state.
    pub marking_b: Vec<u64>,
    /// The code both states share (bit *i* = signal *i*).
    pub code: u64,
    /// The implemented signal whose next-state function the pair makes
    /// ambiguous.
    pub signal: SignalId,
}

/// Per-code excitation summary of a (CSC-free) specification, derived
/// without a state graph: for every reachable code, whether each
/// implemented signal is excited and toward which edge. This is what
/// `rt-synth` derives encoding costs from on the symbolic path.
#[derive(Debug, Clone)]
pub struct CodeTable {
    /// The implemented signals, in signal-index order — the column
    /// order of every row's `excited` vector.
    pub implemented: Vec<SignalId>,
    /// One row per reachable code, ascending by code.
    pub rows: Vec<CodeRow>,
}

/// One reachable code and its excitation vector (see [`CodeTable`]).
#[derive(Debug, Clone)]
pub struct CodeRow {
    /// The binary code (bit *i* = signal *i*).
    pub code: u64,
    /// Excitation of `CodeTable::implemented[k]` in the states carrying
    /// this code (`None` = quiescent). Only meaningful for CSC-free
    /// sets, where all same-code states agree.
    pub excited: Vec<Option<Edge>>,
}

/// Everything one symbolic CSC analysis produced. The `NodeId`s inside
/// are valid for the manager the analysis ran in (keep using the same
/// manager for [`CscAnalysis::code_table`]).
#[derive(Debug, Clone)]
pub struct CscAnalysis {
    /// Number of reachable markings (the audit count — must match the
    /// explicit analyser).
    pub markings: u64,
    /// Forward-BFS iterations to the fixpoint.
    pub iterations: usize,
    /// Total CSC conflicts — exactly
    /// [`crate::state_graph::StateGraph::csc_conflicts`]`().len()`.
    ///
    /// "Exactly" inherits [`rt_boolean::Bdd::satisfy_count_over`]'s
    /// contract: counts are computed through `f64` model counting and
    /// are exact while they fit the 53-bit mantissa (~9 × 10¹⁵ pairs);
    /// beyond that they are correctly-rounded approximations.
    pub conflicts: u64,
    /// Conflict count per implemented signal (signals with zero
    /// conflicts omitted), ascending by signal index.
    pub per_signal: Vec<(SignalId, u64)>,
    /// A concrete conflict pair, when any conflict exists (taken from
    /// the lowest-indexed conflicted signal's relation).
    pub witness: Option<CscWitness>,
    /// Whether no reachable marking enables nothing.
    pub deadlock_free: bool,
    /// Whether every reachable marking can return to the initial one.
    pub strongly_connected: bool,
    /// Live nodes in the manager after the analysis (for a shared
    /// manager this counts everything it holds).
    pub bdd_nodes: usize,
    /// Largest node count the manager hit during the analysis (sampled
    /// at iteration boundaries and around the pair-space products — the
    /// usual peak). This is what dynamic reordering is judged by.
    pub peak_bdd_nodes: usize,
    /// Sifting passes run (0 unless the order is dynamic).
    pub sifts: usize,
    /// Total wall time spent sifting, in nanoseconds.
    pub sift_ns: u64,
    // -- internals for the code-table derivation --
    uvar: Vec<u32>,
    svar: Vec<u32>,
    implemented: Vec<SignalId>,
    reached: NodeId,
    rise: Vec<NodeId>,
    fall: Vec<NodeId>,
}

/// One transition's symbolic firing data, shared by the forward image,
/// the backward (pre-image) step and the enabledness queries.
struct TransImage {
    /// Variables the firing rewrites (pre ∪ post places, plus the
    /// signal variable for labelled transitions).
    changed: Vec<usize>,
    /// Variables set to 1 by the firing (post places; the signal on a
    /// rise).
    set_one: Vec<usize>,
    /// Variables cleared by the firing (pre \ post places; the signal
    /// on a fall).
    set_zero: Vec<usize>,
    /// Full enabling constraint: preset marked, produced places empty
    /// (the safeness side condition of [`super::reach_symbolic_in`]),
    /// and — for labelled transitions — the signal at its source value.
    enabled: NodeId,
    /// The place-only part of `enabled`, for the consistency scan.
    place_enabled: NodeId,
    /// `(signal variable, edge, signal)` for labelled transitions.
    event: Option<(usize, Edge, SignalId)>,
}

/// [`csc_conflicts_symbolic_in`] in a fresh, throwaway manager under
/// the default [`VarOrder`].
///
/// # Errors
///
/// Same as [`csc_conflicts_symbolic_in`].
pub fn csc_conflicts_symbolic(stg: &Stg) -> Result<CscAnalysis, StgError> {
    let mut bdd = Bdd::new(0);
    csc_conflicts_symbolic_in(stg, &mut bdd, VarOrder::default())
}

/// Runs the full symbolic CSC analysis of `stg` inside `bdd`, widening
/// the manager's variable universe as needed (one persistent manager
/// serves any mix of nets — this is how
/// [`crate::engine::ReachEngine::csc_conflicts_symbolic`] calls it).
///
/// # Errors
///
/// * [`StgError::TooManySignals`] — more than 64 signals (codes and
///   witnesses are `u64`s, matching the explicit graph's cap);
/// * [`StgError::Inconsistent`] — a reachable marking enables an edge
///   of a signal already at that edge's target value;
/// * [`StgError::IterationLimitExceeded`] — no fixpoint within the
///   iteration ceiling (10 000 by default);
/// * [`StgError::Cancelled`] / [`StgError::NodeBudgetExceeded`] — the
///   [`ExploreOptions::budget`] triggered; polled once per image step.
pub fn csc_conflicts_symbolic_in(
    stg: &Stg,
    bdd: &mut Bdd,
    order: VarOrder,
) -> Result<CscAnalysis, StgError> {
    csc_conflicts_symbolic_opts(stg, bdd, order, &ExploreOptions::default())
}

/// [`csc_conflicts_symbolic_in`] under explicit [`ExploreOptions`].
/// The BDD analysis itself is unaffected by exploration tuning, but
/// the **initial-code inference** (the bounded explicit sweep of
/// [`infer_initial_code`]) runs under `options`, so an engine-driven
/// analysis derives the same initial code as that engine's explicit
/// detector would.
///
/// # Errors
///
/// Same as [`csc_conflicts_symbolic_in`].
pub fn csc_conflicts_symbolic_opts(
    stg: &Stg,
    bdd: &mut Bdd,
    order: VarOrder,
    options: &ExploreOptions,
) -> Result<CscAnalysis, StgError> {
    let net = stg.net();
    let places = net.place_count();
    let signals = stg.signal_count();
    if signals > 64 {
        return Err(StgError::TooManySignals(signals));
    }
    let order = effective_order(order);

    // --- Variable layout: place pairs with anchored signal splices ---
    let pos_of_place = place_order(stg, order);
    let mut place_at = vec![0usize; places];
    for (place, &pos) in pos_of_place.iter().enumerate() {
        place_at[pos as usize] = place;
    }
    // A signal's anchor is the earliest-ordered place its transitions
    // touch; untouched signals park at the tail.
    let mut signals_at: Vec<Vec<usize>> = vec![Vec::new(); places + 1];
    for s in 0..signals {
        let mut anchor = places as u32;
        for t in stg.transitions_of(SignalId(s as u32)) {
            for arc in net.preset(t).iter().chain(net.postset(t)) {
                anchor = anchor.min(pos_of_place[arc.place.index()]);
            }
        }
        signals_at[anchor as usize].push(s);
    }
    let total_vars = 2 * places + signals;
    bdd.ensure_vars(total_vars);
    // Roles bind to the manager's *levels*: slot i of the layout is
    // whatever variable sits at level i right now. On a fresh manager
    // (identity permutation) this is the classic `2·place + spliced
    // signal` index scheme verbatim; on a persistent, possibly
    // already-sifted manager it keeps each primed twin level-adjacent
    // to its place, which is what the monotone rename below requires.
    let mut uvar = vec![0u32; places];
    let mut pvar = vec![0u32; places];
    let mut svar = vec![0u32; signals];
    {
        let slot_var = |slot: u32| bdd.var_at_level(slot as usize) as u32;
        let mut next = 0u32;
        for pos in 0..=places {
            if pos < places {
                uvar[place_at[pos]] = slot_var(next);
                pvar[place_at[pos]] = slot_var(next + 1);
                next += 2;
            }
            for &s in &signals_at[pos] {
                svar[s] = slot_var(next);
                next += 1;
            }
        }
        debug_assert_eq!(next as usize, total_vars);
    }

    // --- Initial state: exact minterm over places and code bits ---
    let layout = MarkingLayout::new(places, Some(1));
    let initial_code = infer_initial_code(stg, options, &layout)?;
    let initial_marking = stg.initial_marking();
    let mut initial = bdd.constant(true);
    for p in net.places() {
        let v = uvar[p.index()] as usize;
        let lit = if initial_marking.tokens(p) > 0 {
            bdd.var(v)
        } else {
            bdd.nvar(v)
        };
        initial = bdd.and(initial, lit);
    }
    for (s, &v) in svar.iter().enumerate() {
        let lit = if initial_code >> s & 1 == 1 {
            bdd.var(v as usize)
        } else {
            bdd.nvar(v as usize)
        };
        initial = bdd.and(initial, lit);
    }

    // --- Per-transition firing data ---
    let mut images = Vec::new();
    for t in net.transitions() {
        let pre: Vec<usize> = net
            .preset(t)
            .iter()
            .map(|a| uvar[a.place.index()] as usize)
            .collect();
        let post: Vec<usize> = net
            .postset(t)
            .iter()
            .map(|a| uvar[a.place.index()] as usize)
            .collect();
        let mut place_enabled = bdd.constant(true);
        for &v in &pre {
            let lit = bdd.var(v);
            place_enabled = bdd.and(place_enabled, lit);
        }
        for &v in &post {
            if !pre.contains(&v) {
                let lit = bdd.nvar(v);
                place_enabled = bdd.and(place_enabled, lit);
            }
        }
        let mut changed = pre.clone();
        for &v in &post {
            if !changed.contains(&v) {
                changed.push(v);
            }
        }
        let set_one = post.clone();
        let mut set_zero: Vec<usize> = pre.iter().copied().filter(|v| !post.contains(v)).collect();
        let mut enabled = place_enabled;
        let event = match stg.label(t) {
            TransitionLabel::Silent => None,
            TransitionLabel::Event(ev) => {
                let sv = svar[ev.signal.index()] as usize;
                let source = if ev.edge.source_value() {
                    bdd.var(sv)
                } else {
                    bdd.nvar(sv)
                };
                enabled = bdd.and(enabled, source);
                changed.push(sv);
                if ev.edge.target_value() {
                    // `set_one` keeps places first; the signal variable
                    // is appended, which the quantifier loops accept in
                    // any order.
                    let mut with_signal = set_one.clone();
                    with_signal.push(sv);
                    images.push(TransImage {
                        changed,
                        set_one: with_signal,
                        set_zero,
                        enabled,
                        place_enabled,
                        event: Some((sv, ev.edge, ev.signal)),
                    });
                    continue;
                }
                set_zero.push(sv);
                Some((sv, ev.edge, ev.signal))
            }
        };
        images.push(TransImage {
            changed,
            set_one,
            set_zero,
            enabled,
            place_enabled,
            event,
        });
    }

    // --- Reorder control: each (unprimed, primed) pair is one block ---
    let mut group_of_var: Vec<u32> = (0..bdd.vars() as u32).collect();
    for (p, &u) in uvar.iter().enumerate() {
        group_of_var[pvar[p] as usize] = group_of_var[u as usize];
    }
    let mut reorder = ReorderCtl::for_order(order, options);
    reorder.arm(bdd);
    let mut peak = bdd.node_count();

    // --- Forward fixpoint (frontier-based, like the place-only BFS) ---
    let zero = bdd.constant(false);
    let mut reached = initial;
    let mut frontier = initial;
    let mut iterations = 0usize;
    loop {
        if let Some(error) = super::iteration_budget_check(bdd, &options.budget, iterations) {
            return Err(error);
        }
        peak = peak.max(bdd.node_count());
        if reorder.enabled {
            let mut keep: Vec<NodeId> = vec![initial, reached, frontier];
            for image in &images {
                keep.push(image.enabled);
                keep.push(image.place_enabled);
            }
            reorder.maybe_sift(bdd, &keep, Some(&group_of_var));
        }
        iterations += 1;
        let mut next_layer = zero;
        for image in &images {
            let mut fired = bdd.and(frontier, image.enabled);
            if fired == zero {
                continue;
            }
            for &v in &image.changed {
                fired = bdd.exists(fired, v);
            }
            for &v in &image.set_zero {
                let lit = bdd.nvar(v);
                fired = bdd.and(fired, lit);
            }
            for &v in &image.set_one {
                let lit = bdd.var(v);
                fired = bdd.and(fired, lit);
            }
            next_layer = bdd.or(next_layer, fired);
        }
        let not_reached = bdd.not(reached);
        let fresh = bdd.and(next_layer, not_reached);
        if fresh == zero {
            break;
        }
        reached = bdd.or(reached, fresh);
        frontier = fresh;
    }

    // --- Consistency: no reachable state may place-enable an edge of a
    // signal already at the edge's target value. (The checked `enabled`
    // above then makes the fixpoint exactly the consistent token game.)
    for image in &images {
        if let Some((sv, edge, signal)) = image.event {
            let wrong = if edge.target_value() {
                bdd.var(sv)
            } else {
                bdd.nvar(sv)
            };
            let viol = bdd.and(reached, image.place_enabled);
            let viol = bdd.and(viol, wrong);
            if viol != zero {
                return Err(StgError::Inconsistent {
                    signal: stg.signal_name(signal).to_string(),
                    detail: format!(
                        "a reachable marking enables {}{} with the signal already at {}",
                        stg.signal_name(signal),
                        edge.suffix(),
                        u8::from(edge.target_value()),
                    ),
                });
            }
        }
    }

    // --- Deadlock freedom: peel every transition's enabling cube off
    // the reachable set. (Never build the global `⋁ enabled_t`: a
    // disjunction of cubes with scattered supports explodes under any
    // fixed order — on a 16-stage chain it alone costs 2.5 M nodes —
    // while the peeled intermediate stays bounded by `R`, which the
    // fixpoint already proved small.)
    let mut dead = reached;
    for image in &images {
        if dead == zero {
            break;
        }
        let not_enabled = bdd.not(image.enabled);
        dead = bdd.and(dead, not_enabled);
    }
    let deadlock_free = dead == zero;

    // --- Strong connectivity: backward fixpoint from the initial state
    // within R. R is forward-closed, so `R ⊆ B` ⇔ every state reaches
    // the initial state ⇔ (with forward reachability) one SCC.
    let mut back = initial;
    let mut back_frontier = initial;
    let mut back_iterations = 0usize;
    loop {
        // The backward sweep keeps its own iteration count but polls
        // the same budget; fault injection indexes forward and backward
        // iterations alike.
        if let Some(error) = super::iteration_budget_check(bdd, &options.budget, back_iterations) {
            return Err(error);
        }
        peak = peak.max(bdd.node_count());
        if reorder.enabled {
            let mut keep: Vec<NodeId> = vec![initial, reached, back, back_frontier];
            for image in &images {
                keep.push(image.enabled);
                keep.push(image.place_enabled);
            }
            reorder.maybe_sift(bdd, &keep, Some(&group_of_var));
        }
        back_iterations += 1;
        let mut pre_layer = zero;
        for image in &images {
            let mut succ = back_frontier;
            for &v in &image.set_one {
                let lit = bdd.var(v);
                succ = bdd.and(succ, lit);
            }
            for &v in &image.set_zero {
                let lit = bdd.nvar(v);
                succ = bdd.and(succ, lit);
            }
            if succ == zero {
                continue;
            }
            for &v in &image.changed {
                succ = bdd.exists(succ, v);
            }
            let pre_states = bdd.and(succ, image.enabled);
            pre_layer = bdd.or(pre_layer, pre_states);
        }
        let not_back = bdd.not(back);
        let fresh = bdd.and(pre_layer, not_back);
        let fresh = bdd.and(fresh, reached);
        if fresh == zero {
            break;
        }
        back = bdd.or(back, fresh);
        back_frontier = fresh;
    }
    let not_back = bdd.not(back);
    let strongly_connected = bdd.and(reached, not_back) == zero;

    // --- Excitation sets and the conflict relation ---
    let mut rise = vec![zero; signals];
    let mut fall = vec![zero; signals];
    for image in &images {
        if let Some((_, edge, signal)) = image.event {
            let slot = match edge {
                Edge::Rise => &mut rise[signal.index()],
                Edge::Fall => &mut fall[signal.index()],
            };
            *slot = bdd.or(*slot, image.enabled);
        }
    }
    // The pair space is the peak of the whole analysis: reorder once
    // more on `R` (excitation sets pinned) right before paying for two
    // copies of it, so both copies and their product shrink together.
    // Same floor as the fixpoint trigger, measured on *this run's*
    // growth: a pass costs a full walk of the manager — including
    // everything a warm manager carries for other nets — so a net
    // whose own relation is tiny must not pay it.
    if reorder.enabled && bdd.node_count().saturating_sub(reorder.baseline) >= reorder.min_nodes {
        let mut keep: Vec<NodeId> = vec![reached];
        keep.extend(rise.iter().copied());
        keep.extend(fall.iter().copied());
        let start = Instant::now();
        bdd.sift_grouped(&keep, &group_of_var);
        reorder.sift_ns += start.elapsed().as_nanos() as u64;
        reorder.sifts += 1;
    }
    // Prime map: each place's unprimed slot shifts onto its level-
    // adjacent primed twin; signal variables are shared and stay put.
    // Grouped sifting never separates a pair, so the map is monotone
    // in levels no matter what order the passes above settled on.
    let mut prime_map: Vec<u32> = (0..bdd.vars() as u32).collect();
    for (p, &v) in uvar.iter().enumerate() {
        prime_map[v as usize] = pvar[p];
    }
    let reached_primed = bdd.rename_monotone(reached, &prime_map);
    let pair_base = bdd.and(reached, reached_primed);
    peak = peak.max(bdd.node_count());

    let implemented: Vec<SignalId> = stg
        .signals()
        .filter(|&s| stg.signal_kind(s).is_implemented())
        .collect();
    let mut conflicts = 0u64;
    let mut per_signal = Vec::new();
    let mut witness = None;
    for &signal in &implemented {
        let s = signal.index();
        let value = bdd.var(svar[s] as usize);
        let not_falling = bdd.not(fall[s]);
        let stable_high = bdd.and(value, not_falling);
        let implied = bdd.or(rise[s], stable_high);
        let implied_primed = bdd.rename_monotone(implied, &prime_map);
        let not_implied_primed = bdd.not(implied_primed);
        let conf = bdd.and(pair_base, implied);
        let conf = bdd.and(conf, not_implied_primed);
        peak = peak.max(bdd.node_count());
        if conf == zero {
            continue;
        }
        let count = bdd.satisfy_count_over(conf, total_vars);
        if witness.is_none() {
            let words = bdd.satisfy_one(conf).expect("non-empty relation");
            witness = Some(decode_witness(&words, &uvar, &pvar, &svar, signal));
        }
        conflicts += count;
        per_signal.push((signal, count));
    }

    Ok(CscAnalysis {
        markings: bdd.satisfy_count_over(reached, places + signals),
        iterations,
        conflicts,
        per_signal,
        witness,
        deadlock_free,
        strongly_connected,
        bdd_nodes: bdd.node_count(),
        peak_bdd_nodes: peak.max(bdd.node_count()),
        sifts: reorder.sifts,
        sift_ns: reorder.sift_ns,
        uvar,
        svar,
        implemented,
        reached,
        rise,
        fall,
    })
}

/// Maps one satisfying assignment of a conflict relation back to packed
/// markings and the shared code.
fn decode_witness(
    words: &[u64],
    uvar: &[u32],
    pvar: &[u32],
    svar: &[u32],
    signal: SignalId,
) -> CscWitness {
    let bit = |v: u32| {
        words
            .get(v as usize / 64)
            .is_some_and(|w| w >> (v % 64) & 1 == 1)
    };
    let mut marking_a = vec![0u64; (uvar.len().div_ceil(64)).max(1)];
    let mut marking_b = marking_a.clone();
    for (place, &v) in uvar.iter().enumerate() {
        if bit(v) {
            marking_a[place / 64] |= 1 << (place % 64);
        }
        if bit(pvar[place]) {
            marking_b[place / 64] |= 1 << (place % 64);
        }
    }
    let mut code = 0u64;
    for (s, &v) in svar.iter().enumerate() {
        if bit(v) {
            code |= 1 << s;
        }
    }
    CscWitness {
        marking_a,
        marking_b,
        code,
        signal,
    }
}

impl CscAnalysis {
    /// Derives the per-code excitation table of a (CSC-free) analysis:
    /// projects the reachable set and the excitation sets onto the code
    /// variables and enumerates every reachable code. `bdd` must be the
    /// manager the analysis ran in.
    ///
    /// Only meaningful when [`CscAnalysis::conflicts`] is 0 (CSC-free
    /// sets excite uniformly per code); rows of a conflicted set report
    /// "excited somewhere under this code".
    pub fn code_table(&self, bdd: &mut Bdd) -> CodeTable {
        // Quantify place variables bottom-up (deepest level first keeps
        // the intermediate diagrams rooted where they already are; on a
        // sifted manager depth is the level, not the variable index).
        let mut place_vars: Vec<u32> = self.uvar.clone();
        place_vars.sort_unstable_by_key(|&v| std::cmp::Reverse(bdd.level_of(v as usize)));
        let project = |bdd: &mut Bdd, mut node: NodeId, place_vars: &[u32]| {
            for &v in place_vars {
                node = bdd.exists(node, v as usize);
            }
            node
        };
        let codes_set = project(bdd, self.reached, &place_vars);
        let mut svar_sorted: Vec<(u32, usize)> = self
            .svar
            .iter()
            .copied()
            .enumerate()
            .map(|(s, v)| (v, s))
            .collect();
        svar_sorted.sort_unstable();
        let vars: Vec<u32> = svar_sorted.iter().map(|&(v, _)| v).collect();
        let masks = bdd.satisfy_all_over(codes_set, &vars);
        // `satisfy_all_over` bits follow `vars` order; remap to signal
        // index order.
        let to_code = |mask: u64| {
            let mut code = 0u64;
            for (i, &(_, s)) in svar_sorted.iter().enumerate() {
                if mask >> i & 1 == 1 {
                    code |= 1 << s;
                }
            }
            code
        };
        let mut codes: Vec<u64> = masks.into_iter().map(to_code).collect();
        codes.sort_unstable();

        let eval_words = |code: u64, svar: &[u32], len: usize| {
            let mut words = vec![0u64; len.div_ceil(64).max(1)];
            for (s, &v) in svar.iter().enumerate() {
                if code >> s & 1 == 1 {
                    words[v as usize / 64] |= 1 << (v % 64);
                }
            }
            words
        };
        // Word buffers must span the manager's whole universe: with
        // role-by-level assignment on a reused manager a code variable
        // can sit at any index, not just below `2·places + signals`.
        let total_vars = bdd.vars();
        let mut rise_proj = Vec::with_capacity(self.implemented.len());
        let mut fall_proj = Vec::with_capacity(self.implemented.len());
        for &signal in &self.implemented {
            let er = bdd.and(self.reached, self.rise[signal.index()]);
            rise_proj.push(project(bdd, er, &place_vars));
            let ef = bdd.and(self.reached, self.fall[signal.index()]);
            fall_proj.push(project(bdd, ef, &place_vars));
        }
        let rows = codes
            .into_iter()
            .map(|code| {
                let words = eval_words(code, &self.svar, total_vars);
                let excited = self
                    .implemented
                    .iter()
                    .enumerate()
                    .map(|(k, _)| {
                        if bdd.evaluate_words(rise_proj[k], &words) {
                            Some(Edge::Rise)
                        } else if bdd.evaluate_words(fall_proj[k], &words) {
                            Some(Edge::Fall)
                        } else {
                            None
                        }
                    })
                    .collect();
                CodeRow { code, excited }
            })
            .collect();
        CodeTable {
            implemented: self.implemented.clone(),
            rows,
        }
    }
}
