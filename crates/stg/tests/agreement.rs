//! Acceptance regression: explicit (packed/interned BFS) and symbolic
//! (BDD image computation) reachability must agree on the number of
//! reachable markings for every specification shipped in
//! [`rt_stg::models`] and the `.g` corpus.

use rt_stg::symbolic::reach_symbolic;
use rt_stg::{corpus, explore, models, Stg};

fn assert_agreement(name: &str, stg: &Stg) {
    let explicit = explore(stg).unwrap_or_else(|e| panic!("{name}: explicit: {e}"));
    let symbolic = reach_symbolic(stg).unwrap_or_else(|e| panic!("{name}: symbolic: {e}"));
    assert_eq!(
        symbolic.markings,
        explicit.state_count() as u64,
        "{name}: symbolic and explicit reachable-marking counts diverge"
    );
}

#[test]
fn explicit_and_symbolic_agree_on_every_model() {
    let mut specs: Vec<(String, Stg)> = vec![
        ("handshake".into(), models::handshake_stg()),
        ("fifo".into(), models::fifo_stg()),
        ("fifo_csc".into(), models::fifo_stg_csc()),
        ("celement".into(), models::celement_stg()),
    ];
    for n in 2..7 {
        specs.push((format!("chain{n}"), models::chain_stg(n)));
    }
    for (n, tokens) in [(3, 1), (4, 1), (5, 2), (6, 2), (8, 2), (9, 3), (10, 3)] {
        specs.push((format!("ring{n}_{tokens}"), models::ring_stg(n, tokens)));
    }
    for (name, stg) in &specs {
        assert_agreement(name, stg);
    }
}

#[test]
fn explicit_and_symbolic_agree_on_corpus() {
    for (name, text) in corpus::all() {
        let stg = corpus::parse(text).expect("corpus entry parses");
        assert_agreement(name, &stg);
    }
}

#[test]
fn explicit_and_symbolic_agree_on_wide_models() {
    // The > 64-place generated models: packed markings run W2 and
    // beyond, the BDD manager runs past 64 variables.
    for (name, stg) in corpus::wide() {
        assert!(stg.net().place_count() > 64, "{name}");
        assert_agreement(&name, &stg);
    }
}

#[test]
fn engine_backends_agree_on_models_and_wide_corpus() {
    // The same sweep through the ReachEngine facade: one explicit and
    // one symbolic engine (single persistent manager) across all
    // models.
    use rt_stg::engine::ReachEngine;
    let mut explicit = ReachEngine::explicit();
    let mut symbolic = ReachEngine::symbolic();
    let mut specs: Vec<(String, Stg)> = vec![
        ("fifo".into(), models::fifo_stg()),
        ("celement".into(), models::celement_stg()),
        ("ring6_2".into(), models::ring_stg(6, 2)),
    ];
    specs.extend(corpus::wide());
    for (name, stg) in &specs {
        let e = explicit
            .summary(stg)
            .unwrap_or_else(|err| panic!("{name}: {err}"));
        let s = symbolic
            .summary(stg)
            .unwrap_or_else(|err| panic!("{name}: {err}"));
        assert_eq!(e.markings, s.markings, "{name}: backends diverge");
        let sg = explore(stg).unwrap_or_else(|err| panic!("{name}: {err}"));
        assert_eq!(e.markings, sg.state_count() as u64, "{name}");
    }
    assert_eq!(
        symbolic.stats().manager_reuses,
        specs.len() - 1,
        "every symbolic call after the first reused the one manager"
    );
}
