//! Proves the packed-marking hot path performs zero per-state heap
//! allocations for safe nets with ≤ 64 places.
//!
//! A counting global allocator wraps `System`; the test plays thousands
//! of transition firings through `is_enabled_packed` /
//! `fire_packed_into` and asserts the allocation counter never moves.
//! (Whole-exploration allocation is amortized — table growth — so the
//! guarantee that matters, and the one the ISSUE pins, is that *firing
//! and interning an already-seen state* allocates nothing.)

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicUsize, Ordering};

struct CountingAllocator;

static ALLOCATIONS: AtomicUsize = AtomicUsize::new(0);

unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static GLOBAL: CountingAllocator = CountingAllocator;

fn allocation_count() -> usize {
    ALLOCATIONS.load(Ordering::Relaxed)
}

use rt_stg::marking::{MarkingArena, MarkingLayout, PackedMarking};
use rt_stg::models;

// This target runs without the libtest harness (`harness = false` in
// Cargo.toml): the counter is process-global, so even the harness's own
// bookkeeping threads would bleed allocations into the measured regions.
fn main() {
    firing_safe_net_transitions_never_allocates();
    interning_known_markings_never_allocates();
    println!("alloc: ok (packed hot path performed zero heap allocations)");
}

fn firing_safe_net_transitions_never_allocates() {
    let stg = models::fifo_stg();
    let net = stg.net();
    assert!(
        net.place_count() <= 64,
        "fifo model must fit the inline word"
    );

    let layout = MarkingLayout::new(net.place_count(), Some(1));
    let mut current = PackedMarking::pack(&layout, &stg.initial_marking());
    let mut scratch = PackedMarking::zero(&layout);

    // Warm up (first enabled-scan may lazily touch nothing, but keep the
    // measured region clean of one-time effects).
    for t in net.transitions() {
        std::hint::black_box(net.is_enabled_packed(t, &current, &layout));
    }

    let before = allocation_count();
    let mut fired = 0u32;
    while fired < 10_000 {
        let mut advanced = false;
        for t in net.transitions() {
            if net.is_enabled_packed(t, &current, &layout) {
                net.fire_packed_into(t, &current, &layout, Some(1), &mut scratch)
                    .expect("safe net stays within bound");
                std::mem::swap(&mut current, &mut scratch);
                fired += 1;
                advanced = true;
                break;
            }
        }
        assert!(
            advanced,
            "fifo spec is live; some transition is always enabled"
        );
    }
    let after = allocation_count();
    assert_eq!(
        after - before,
        0,
        "firing {fired} transitions on a ≤64-place safe net must not allocate"
    );
}

fn interning_known_markings_never_allocates() {
    let stg = models::fifo_stg();
    let net = stg.net();
    let layout = MarkingLayout::new(net.place_count(), Some(1));
    // Pre-size generously so the measured region cannot trigger growth.
    let mut arena = MarkingArena::with_capacity(layout, 1 << 12);
    let mut current = PackedMarking::pack(&layout, &stg.initial_marking());
    let mut scratch = PackedMarking::zero(&layout);

    // First pass: discover a cycle's worth of markings (may allocate in
    // the items vector, amortized).
    let mut trail = Vec::new();
    for _ in 0..64 {
        arena.intern(current.clone());
        trail.push(current.clone());
        let t = net
            .transitions()
            .find(|&t| net.is_enabled_packed(t, &current, &layout))
            .expect("live spec");
        net.fire_packed_into(t, &current, &layout, Some(1), &mut scratch)
            .expect("safe");
        std::mem::swap(&mut current, &mut scratch);
    }

    // Second pass: every marking is already interned; lookups must be
    // allocation-free.
    let before = allocation_count();
    for m in &trail {
        let (_, fresh) = arena.intern_ref(m);
        assert!(!fresh, "second pass only revisits known markings");
    }
    let after = allocation_count();
    assert_eq!(
        after - before,
        0,
        "re-interning known markings must not allocate"
    );
}
