//! Cross-detector agreement: the symbolic CSC analysis
//! (`rt_stg::symbolic::csc`) against the explicit
//! `StateGraph::csc_conflicts` over the full corpus, wide models
//! included — counts, witnesses, liveness flags and the persistent
//! engine entry point.

use rt_boolean::Bdd;
use rt_stg::engine::ReachEngine;
use rt_stg::symbolic::csc::{csc_conflicts_symbolic, csc_conflicts_symbolic_in, CscWitness};
use rt_stg::symbolic::VarOrder;
use rt_stg::{corpus, explore, StateGraph, StateId};

/// Finds the explicit state carrying exactly this packed marking.
fn state_by_marking(sg: &StateGraph, words: &[u64]) -> Option<StateId> {
    sg.states().find(|&s| sg.packed_marking(s).words() == words)
}

/// A witness is *verified* by locating both markings in the explicit
/// graph and replaying the conflict definition on them.
fn verify_witness(name: &str, sg: &StateGraph, witness: &CscWitness) {
    let a = state_by_marking(sg, &witness.marking_a)
        .unwrap_or_else(|| panic!("{name}: witness marking A is not explicitly reachable"));
    let b = state_by_marking(sg, &witness.marking_b)
        .unwrap_or_else(|| panic!("{name}: witness marking B is not explicitly reachable"));
    assert_ne!(a, b, "{name}: witness states must be distinct");
    assert_eq!(
        sg.code(a),
        sg.code(b),
        "{name}: witness states must share a code"
    );
    assert_eq!(
        sg.code(a),
        witness.code,
        "{name}: witness reports the shared code"
    );
    assert!(
        sg.implied_value(a, witness.signal) && !sg.implied_value(b, witness.signal),
        "{name}: witness pair must disagree on the implied value of the reported \
         signal, 1-side first"
    );
    assert!(
        sg.csc_conflicts()
            .iter()
            .any(|c| (c.a == a && c.b == b || c.a == b && c.b == a) && c.signal == witness.signal),
        "{name}: witness pair must appear in the explicit conflict list"
    );
}

#[test]
fn counts_and_witnesses_agree_across_the_corpus() {
    // One persistent manager across the whole sweep — exactly how the
    // engine uses the detector in production.
    let mut shared = Bdd::new(0);
    for (name, stg) in corpus::sweep() {
        let sg = explore(&stg).unwrap_or_else(|e| panic!("{name}: {e}"));
        let explicit = sg.csc_conflicts();
        let analysis = csc_conflicts_symbolic_in(&stg, &mut shared, VarOrder::default())
            .unwrap_or_else(|e| panic!("{name}: {e}"));
        assert_eq!(
            analysis.conflicts,
            explicit.len() as u64,
            "{name}: symbolic conflict count must equal the explicit one"
        );
        assert_eq!(
            analysis.markings,
            sg.state_count() as u64,
            "{name}: reachable-marking counts must agree"
        );
        assert_eq!(
            analysis.deadlock_free,
            sg.deadlock_states().is_empty(),
            "{name}: deadlock flags must agree"
        );
        assert_eq!(
            analysis.strongly_connected,
            sg.is_strongly_connected(),
            "{name}: connectivity flags must agree"
        );
        // Per-signal totals partition the explicit list.
        for &(signal, count) in &analysis.per_signal {
            let explicit_count = explicit.iter().filter(|c| c.signal == signal).count() as u64;
            assert_eq!(
                count, explicit_count,
                "{name}: per-signal count of {signal:?}"
            );
        }
        match (&analysis.witness, explicit.is_empty()) {
            (Some(witness), false) => verify_witness(&name, &sg, witness),
            (None, true) => {}
            (w, _) => panic!(
                "{name}: witness presence must track conflict presence (witness: {}, \
                 explicit: {})",
                w.is_some(),
                explicit.len()
            ),
        }
    }
}

#[test]
fn every_var_order_agrees_on_the_conflicted_models() {
    for (name, text) in corpus::all() {
        let stg = corpus::parse(text).expect("parses");
        let sg = explore(&stg).expect("explores");
        let expected = sg.csc_conflicts().len() as u64;
        for order in [
            VarOrder::ByIndex,
            VarOrder::BfsConnectivity,
            VarOrder::ReverseIndex,
            VarOrder::Auto,
        ] {
            let mut bdd = Bdd::new(0);
            let analysis = csc_conflicts_symbolic_in(&stg, &mut bdd, order)
                .unwrap_or_else(|e| panic!("{name} {order:?}: {e}"));
            assert_eq!(analysis.conflicts, expected, "{name} {order:?}");
            if expected > 0 {
                verify_witness(name, &sg, analysis.witness.as_ref().expect("witness"));
            }
        }
    }
}

#[test]
fn engine_entry_point_reuses_the_persistent_manager() {
    let mut engine = ReachEngine::symbolic();
    let stg = rt_stg::models::fifo_stg();
    let first = engine.csc_conflicts_symbolic(&stg).expect("analyses");
    assert!(
        first.conflicts > 0,
        "the fifo spec is the paper's CSC example"
    );
    assert_eq!(engine.stats().symbolic_csc, 1);
    let nodes = engine.manager_nodes();
    assert!(nodes > 2);
    let second = engine.csc_conflicts_symbolic(&stg).expect("analyses again");
    assert_eq!(second.conflicts, first.conflicts);
    assert_eq!(second.witness, first.witness, "replay is deterministic");
    assert_eq!(
        engine.manager_nodes(),
        nodes,
        "identical net re-analysed out of cache: no new nodes"
    );
    assert!(engine.stats().manager_reuses >= 1);
    assert_eq!(engine.stats().symbolic_csc, 2);
    assert_eq!(
        engine.stats().graph_builds,
        0,
        "no explicit graph was ever built"
    );
}

#[test]
fn inconsistent_specifications_are_rejected_like_the_explicit_analyser() {
    use rt_stg::{Edge, SignalKind, Stg};
    // a+ twice in a row: the canonical inconsistent net.
    let mut stg = Stg::new("bad");
    let a = stg.add_signal("a", SignalKind::Input).unwrap();
    let t1 = stg.transition_for(a, Edge::Rise);
    let t2 = stg.transition_for(a, Edge::Rise);
    stg.arc(t1, t2);
    let p = stg.add_place("start");
    stg.set_tokens(p, 1);
    stg.arc_from_place(p, t1);
    let explicit = explore(&stg).unwrap_err();
    assert!(matches!(explicit, rt_stg::StgError::Inconsistent { .. }));
    let symbolic = csc_conflicts_symbolic(&stg).unwrap_err();
    assert!(
        matches!(symbolic, rt_stg::StgError::Inconsistent { .. }),
        "got {symbolic:?}"
    );
}

#[test]
fn code_table_matches_the_explicit_graph_on_csc_free_models() {
    use rt_stg::models;
    for (name, stg) in [
        ("handshake", models::handshake_stg()),
        ("fifo_csc", models::fifo_stg_csc()),
        ("celement", models::celement_stg()),
    ] {
        let sg = explore(&stg).expect("explores");
        assert!(sg.csc_conflicts().is_empty(), "{name} is CSC-free");
        let mut bdd = Bdd::new(0);
        let analysis = csc_conflicts_symbolic_in(&stg, &mut bdd, VarOrder::default())
            .unwrap_or_else(|e| panic!("{name}: {e}"));
        let table = analysis.code_table(&mut bdd);
        let mut explicit_codes: Vec<u64> = sg.distinct_codes().into_iter().collect();
        explicit_codes.sort_unstable();
        let symbolic_codes: Vec<u64> = table.rows.iter().map(|r| r.code).collect();
        assert_eq!(symbolic_codes, explicit_codes, "{name}: reachable codes");
        for row in &table.rows {
            let state = sg
                .states()
                .find(|&s| sg.code(s) == row.code)
                .expect("code has a state");
            for (k, &signal) in table.implemented.iter().enumerate() {
                assert_eq!(
                    row.excited[k],
                    sg.excitation(state, signal),
                    "{name}: excitation of {signal:?} at code {:b}",
                    row.code
                );
            }
        }
    }
}
