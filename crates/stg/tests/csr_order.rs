//! Regression tests pinning the CSR arc store to the historical
//! nested-`Vec` exploration order.
//!
//! The reachability analyser used to keep `Vec<Vec<StateArc>>` rows
//! filled by a FIFO breadth-first sweep over dense `Marking` keys; the
//! packed/CSR rewrite must produce byte-identical iteration order —
//! synthesis and region computations depend on deterministic state and
//! arc numbering. The reference implementation below replays the old
//! algorithm through the public `PetriNet` token-game API.

use std::collections::{HashMap, VecDeque};

use rt_stg::state_graph::StateArc;
use rt_stg::stg::TransitionLabel;
use rt_stg::{corpus, explore, models, Marking, StateId, Stg};

/// The pre-CSR explorer: FIFO BFS over dense markings with nested arc
/// rows, exactly as `reach::explore_with` was originally written (minus
/// consistency checking, which is orthogonal to ordering).
fn reference_explore(stg: &Stg) -> (Vec<Marking>, Vec<Vec<StateArc>>) {
    let net = stg.net();
    let mut index: HashMap<Marking, u32> = HashMap::new();
    let mut markings: Vec<Marking> = Vec::new();
    let mut arcs: Vec<Vec<StateArc>> = Vec::new();
    let mut queue: VecDeque<u32> = VecDeque::new();

    let initial = stg.initial_marking();
    index.insert(initial.clone(), 0);
    markings.push(initial);
    arcs.push(Vec::new());
    queue.push_back(0);

    while let Some(state) = queue.pop_front() {
        let marking = markings[state as usize].clone();
        for transition in net.enabled(&marking) {
            let next = net
                .fire(transition, &marking)
                .expect("enabled transition fires");
            let to = match index.get(&next) {
                Some(&existing) => existing,
                None => {
                    let id = markings.len() as u32;
                    index.insert(next.clone(), id);
                    markings.push(next);
                    arcs.push(Vec::new());
                    queue.push_back(id);
                    id
                }
            };
            let event = match stg.label(transition) {
                TransitionLabel::Silent => None,
                TransitionLabel::Event(ev) => Some(ev),
            };
            arcs[state as usize].push(StateArc {
                event,
                to: StateId(to),
            });
        }
    }
    (markings, arcs)
}

fn assert_same_order(name: &str, stg: &Stg) {
    let sg = explore(stg).unwrap_or_else(|e| panic!("{name}: {e}"));
    let (ref_markings, ref_arcs) = reference_explore(stg);
    assert_eq!(sg.state_count(), ref_markings.len(), "{name}: state count");
    for state in sg.states() {
        assert_eq!(
            sg.marking(state),
            ref_markings[state.index()],
            "{name}: state {state} maps to a different marking"
        );
        assert_eq!(
            sg.successors(state),
            ref_arcs[state.index()].as_slice(),
            "{name}: successor row of {state} diverges from nested-Vec order"
        );
    }
    // Predecessor rows: the historical order pushed arcs while scanning
    // successor rows in state order.
    let mut ref_preds: Vec<Vec<StateArc>> = vec![Vec::new(); ref_markings.len()];
    for (from, row) in ref_arcs.iter().enumerate() {
        for arc in row {
            ref_preds[arc.to.index()].push(StateArc {
                event: arc.event,
                to: StateId(from as u32),
            });
        }
    }
    for state in sg.states() {
        assert_eq!(
            sg.predecessors(state),
            ref_preds[state.index()].as_slice(),
            "{name}: predecessor row of {state} diverges"
        );
    }
}

#[test]
fn csr_matches_nested_vec_order_on_models() {
    for (name, stg) in [
        ("handshake", models::handshake_stg()),
        ("fifo", models::fifo_stg()),
        ("fifo_csc", models::fifo_stg_csc()),
        ("celement", models::celement_stg()),
        ("chain3", models::chain_stg(3)),
        ("chain6", models::chain_stg(6)),
        ("ring4_1", models::ring_stg(4, 1)),
        ("ring6_2", models::ring_stg(6, 2)),
        ("ring9_3", models::ring_stg(9, 3)),
    ] {
        assert_same_order(name, &stg);
    }
}

#[test]
fn csr_matches_nested_vec_order_on_corpus() {
    for (name, text) in corpus::all() {
        let stg = corpus::parse(text).expect("corpus entry parses");
        assert_same_order(name, &stg);
    }
}
