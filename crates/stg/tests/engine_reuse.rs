//! Property test for the `ReachEngine` symbolic backend's manager
//! reuse: a **reused** manager must return bit-identical reachable sets
//! to a **fresh** manager on every model of the corpus, in every
//! visiting order.
//!
//! This is the guard against cache-poisoning bugs: the persistent
//! apply/cofactor caches and unique table survive across nets, so a
//! stale or mis-keyed entry would silently corrupt a later net's
//! reachable set. "Bit-identical" is checked at the set level, not just
//! the count: the explicitly enumerated markings of the net must all be
//! members of the symbolic set, and the model counts must match — for
//! safe nets (1 bit per place) that pins the set exactly.

use proptest::prelude::*;
use rt_stg::engine::ReachEngine;
use rt_stg::{corpus, explore, models, Budget, Stg, StgError};

/// The sweep corpus: paper models, `.g` corpus, scaling generators and
/// the wide (> 64-place) models.
fn sweep() -> Vec<(String, Stg)> {
    let mut specs: Vec<(String, Stg)> = vec![
        ("handshake".into(), models::handshake_stg()),
        ("fifo".into(), models::fifo_stg()),
        ("fifo_csc".into(), models::fifo_stg_csc()),
        ("celement".into(), models::celement_stg()),
        ("chain4".into(), models::chain_stg(4)),
        ("ring6_2".into(), models::ring_stg(6, 2)),
    ];
    for (name, text) in corpus::all() {
        specs.push((name.to_string(), corpus::parse(text).expect("parses")));
    }
    specs.push(("adder16_rt".into(), corpus::adder16_rt_stg()));
    specs
}

/// Asserts the reused-manager run of `stg` reproduces the fresh run
/// bit-for-bit: same model count, same iteration trace, and the same
/// membership answer for every explicitly reachable marking (and for
/// the fresh run's set, so the two sets agree on the full explicit
/// support).
fn assert_bit_identical(name: &str, stg: &Stg, reused: &mut ReachEngine) {
    let mut fresh = ReachEngine::symbolic();
    let f = fresh
        .symbolic_set(stg)
        .unwrap_or_else(|e| panic!("{name}: fresh: {e}"));
    let r = reused
        .symbolic_set(stg)
        .unwrap_or_else(|e| panic!("{name}: reused: {e}"));
    assert_eq!(f.markings, r.markings, "{name}: model counts diverge");
    assert_eq!(
        f.iterations, r.iterations,
        "{name}: fixpoint depth diverges"
    );

    let sg = explore(stg).unwrap_or_else(|e| panic!("{name}: explicit: {e}"));
    assert_eq!(
        sg.marking_layout().bits(),
        1,
        "{name}: safe net, 1 bit/place"
    );
    assert_eq!(f.markings, sg.state_count() as u64, "{name}");
    let fresh_bdd = fresh.manager().expect("fresh manager alive");
    let reused_bdd = reused.manager().expect("reused manager alive");
    assert_eq!(
        f.place_of_var, r.place_of_var,
        "{name}: static variable order must not depend on manager history"
    );
    for state in sg.states() {
        let words = sg.packed_marking(state).words();
        assert!(
            f.contains(fresh_bdd, words),
            "{name}: marking missing from fresh set"
        );
        assert!(
            r.contains(reused_bdd, words),
            "{name}: marking missing from reused set"
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Random visiting orders (with repetition) over the sweep: one
    /// engine serves them all, and each stop must match a fresh run.
    /// Repetition matters — re-visiting a net after the manager grew on
    /// other nets is the pure cache-replay path.
    #[test]
    fn reused_manager_matches_fresh_runs_in_any_order(
        seed in 0u64..1 << 16,
        extra_visits in 1usize..5,
    ) {
        let specs = sweep();
        let mut engine = ReachEngine::symbolic();
        // Deterministic pseudo-shuffle driven by the seed.
        let mut order: Vec<usize> = (0..specs.len()).collect();
        let mut s = seed | 1;
        for i in (1..order.len()).rev() {
            s = s.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            order.swap(i, (s >> 33) as usize % (i + 1));
        }
        for _ in 0..extra_visits {
            s = s.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            order.push((s >> 33) as usize % specs.len());
        }
        for &i in &order {
            let (name, stg) = &specs[i];
            assert_bit_identical(name, stg, &mut engine);
        }
        prop_assert!(engine.stats().manager_reuses >= order.len() - 1);
    }
}

#[test]
fn reused_manager_matches_fresh_runs_across_the_whole_sweep() {
    // The deterministic full sweep, plus the wide fabric (kept out of
    // the proptest loop for runtime).
    let mut engine = ReachEngine::symbolic();
    for (name, stg) in sweep() {
        assert_bit_identical(&name, &stg, &mut engine);
    }
    assert_bit_identical("fabric4x4", &corpus::fabric4x4_stg(), &mut engine);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// A manager trimmed at random points of the sweep must keep
    /// returning bit-identical reachable sets: `trim` drops only memo
    /// tables, never nodes, so every answer — count, fixpoint depth and
    /// set membership — is unchanged, merely recomputed.
    #[test]
    fn trimmed_manager_matches_fresh_runs(
        seed in 0u64..1 << 16,
    ) {
        let specs = sweep();
        let mut engine = ReachEngine::symbolic();
        let mut s = seed | 1;
        for (i, (name, stg)) in specs.iter().enumerate() {
            s = s.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            if s >> 33 & 1 == 1 {
                engine.trim();
                prop_assert_eq!(engine.manager_cache_len(), 0, "trim empties the caches");
            }
            assert_bit_identical(name, stg, &mut engine);
            prop_assert!(engine.manager_nodes() > 2, "manager alive after visit {i}");
        }
        prop_assert!(engine.stats().trims <= specs.len());
    }
}

#[test]
fn trim_then_revisit_allocates_no_new_nodes() {
    // Replaying an already-interned net after a trim rebuilds cache
    // entries but must land on the very same unique-table nodes.
    let stg = models::fifo_stg();
    let mut engine = ReachEngine::symbolic();
    let before = engine.symbolic_set(&stg).expect("first run");
    let nodes = engine.manager_nodes();
    engine.trim();
    let after = engine.symbolic_set(&stg).expect("post-trim run");
    assert_eq!(before.set, after.set, "same reachable-set node id");
    assert_eq!(before.markings, after.markings);
    assert_eq!(before.iterations, after.iterations);
    assert_eq!(
        engine.manager_nodes(),
        nodes,
        "no fresh nodes, only recomputed memos"
    );
}

/// A budget-interrupted explicit engine must stay fully reusable: after
/// an exhausted or cancelled run, lifting the budget and re-asking must
/// reproduce a fresh engine's graph exactly — at every pool width
/// (1 = serial walk, 2/8 = sharded walk).
#[test]
fn budget_interrupted_explicit_engine_stays_reusable_at_any_thread_count() {
    let stg = models::fifo_stg();
    let reference = explore(&stg).expect("fresh explicit explore");
    for threads in [1usize, 2, 8] {
        // State-budget exhaustion mid-walk.
        let mut engine = ReachEngine::explicit()
            .with_threads(threads)
            .with_budget(Budget::unlimited().with_max_states(3));
        assert!(
            matches!(
                engine.state_graph(&stg),
                Err(StgError::StateBudgetExceeded { .. })
            ),
            "x{threads}: tiny budget must interrupt the walk"
        );
        engine.options_mut().budget = Budget::default();
        let sg = engine
            .state_graph(&stg)
            .unwrap_or_else(|e| panic!("x{threads}: reuse after exhaustion: {e}"));
        assert_eq!(sg.state_count(), reference.state_count(), "x{threads}");
        assert_eq!(sg.arc_count(), reference.arc_count(), "x{threads}");

        // Cancellation before the walk finishes.
        let mut engine = ReachEngine::explicit().with_threads(threads);
        engine.budget().cancel.cancel();
        assert!(
            matches!(engine.state_graph(&stg), Err(StgError::Cancelled)),
            "x{threads}: a fired token must stop the walk"
        );
        engine.options_mut().budget = Budget::default();
        let sg = engine
            .state_graph(&stg)
            .unwrap_or_else(|e| panic!("x{threads}: reuse after cancellation: {e}"));
        assert_eq!(sg.state_count(), reference.state_count(), "x{threads}");
        assert_eq!(sg.arc_count(), reference.arc_count(), "x{threads}");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Budget interruptions sprinkled across the sweep must never
    /// poison the persistent symbolic manager: every interrupted visit
    /// is retried unbudgeted and must still be bit-identical to a fresh
    /// engine's answer.
    #[test]
    fn budget_interrupted_symbolic_manager_stays_bit_identical(
        seed in 0u64..1 << 16,
    ) {
        let specs = sweep();
        let mut engine = ReachEngine::symbolic();
        let mut s = seed | 1;
        for (name, stg) in &specs {
            s = s.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            match s >> 33 & 3 {
                0 => {
                    // Starve the fixpoint of iterations.
                    engine.options_mut().budget =
                        Budget::unlimited().with_max_iterations(1);
                    let interrupted = engine.symbolic_set(stg);
                    prop_assert!(
                        interrupted.as_ref().is_err_and(|e| e.is_resource_exhaustion()),
                        "{}: expected exhaustion, got {interrupted:?}", name
                    );
                }
                1 => {
                    // Starve the manager of nodes.
                    engine.options_mut().budget =
                        Budget::unlimited().with_max_bdd_nodes(1);
                    let interrupted = engine.symbolic_set(stg);
                    prop_assert!(
                        interrupted.as_ref().is_err_and(|e| e.is_resource_exhaustion()),
                        "{}: expected exhaustion, got {interrupted:?}", name
                    );
                }
                2 => {
                    // Cancel before the fixpoint starts.
                    let budget = Budget::default();
                    budget.cancel.cancel();
                    engine.options_mut().budget = budget;
                    prop_assert!(
                        matches!(engine.symbolic_set(stg), Err(StgError::Cancelled)),
                        "{}: expected cancellation", name
                    );
                }
                _ => {} // healthy visit, no interruption
            }
            engine.options_mut().budget = Budget::default();
            assert_bit_identical(name, stg, &mut engine);
        }
    }
}

#[test]
fn reset_restores_cold_start_equivalence() {
    // reset() must be a true escape hatch: post-reset results equal
    // pre-reset results equal fresh results.
    let stg = models::fifo_stg();
    let mut engine = ReachEngine::symbolic();
    let before = engine.symbolic_set(&stg).expect("explores");
    engine.reset();
    assert_eq!(engine.manager_nodes(), 0);
    let after = engine.symbolic_set(&stg).expect("explores after reset");
    assert_eq!(before.markings, after.markings);
    assert_eq!(before.iterations, after.iterations);
    assert_eq!(
        before.bdd_nodes, after.bdd_nodes,
        "cold rebuild is byte-for-byte"
    );
}
