//! Deterministic fault-injection coverage for the engine's failure
//! edges (compiled only with `--features fault-injection`).
//!
//! Each test arms one fault from `rt_stg::faults`, drives a normal
//! analysis into it, and then — *while still holding the arm guard, so
//! fault tests never interleave* — re-runs the same analysis with the
//! shots spent and asserts the engine reproduces a fresh engine's
//! answer bit-for-bit. That is the whole robustness contract: injected
//! budget exhaustion, cancellation and worker panics must neither hang,
//! abort, nor leave any state behind.

#![cfg(feature = "fault-injection")]

use rt_stg::engine::ReachEngine;
use rt_stg::faults::{arm, Fault};
use rt_stg::{explore, models, StgError};

#[test]
fn injected_worker_panic_is_isolated_at_any_round_and_thread_count() {
    let stg = models::fifo_stg();
    let reference = explore(&stg).expect("fresh explore");
    for threads in [2usize, 4, 8] {
        for round in [0usize, 1] {
            for worker in [0usize, 1] {
                let _guard = arm(Fault::PanicAt { round, worker }, 1);
                let mut engine = ReachEngine::explicit().with_threads(threads);
                let result = engine.state_graph(&stg);
                assert!(
                    matches!(result, Err(StgError::WorkerPanicked)),
                    "threads={threads} round={round} worker={worker}: {result:?}"
                );
                // The shot is spent; the very next run must be healthy
                // and bit-identical to a fresh engine's graph.
                let sg = engine
                    .state_graph(&stg)
                    .expect("engine reusable after an injected panic");
                assert_eq!(sg.state_count(), reference.state_count());
                assert_eq!(sg.arc_count(), reference.arc_count());
            }
        }
    }
}

#[test]
fn injected_cancellation_stops_explicit_walks_within_one_round() {
    let stg = models::fifo_stg();
    let reference = explore(&stg).expect("fresh explore");
    for threads in [1usize, 2, 8] {
        for round in [0usize, 2] {
            let _guard = arm(Fault::CancelAt { round }, 1);
            let mut engine = ReachEngine::explicit().with_threads(threads);
            let result = engine.state_graph(&stg);
            assert!(
                matches!(result, Err(StgError::Cancelled)),
                "threads={threads} round={round}: {result:?}"
            );
            let sg = engine.state_graph(&stg).expect("reusable after cancel");
            assert_eq!(sg.state_count(), reference.state_count());
            assert_eq!(sg.arc_count(), reference.arc_count());
        }
    }
}

#[test]
fn injected_state_exhaustion_stops_explicit_walks_within_one_round() {
    let stg = models::fifo_stg();
    let reference = explore(&stg).expect("fresh explore");
    for threads in [1usize, 4] {
        let _guard = arm(Fault::ExhaustStatesAt { round: 1 }, 1);
        let mut engine = ReachEngine::explicit().with_threads(threads);
        let result = engine.state_graph(&stg);
        assert!(
            matches!(result, Err(StgError::StateBudgetExceeded { .. })),
            "threads={threads}: {result:?}"
        );
        let sg = engine.state_graph(&stg).expect("reusable after exhaustion");
        assert_eq!(sg.state_count(), reference.state_count());
        assert_eq!(sg.arc_count(), reference.arc_count());
    }
}

#[test]
fn injected_symbolic_faults_stop_the_fixpoint_and_spare_the_manager() {
    let stg = models::fifo_stg();
    let mut fresh = ReachEngine::symbolic();
    let reference = fresh.symbolic_set(&stg).expect("fresh symbolic set");

    let _guard = arm(Fault::ExhaustNodesAt { iteration: 1 }, 1);
    let mut engine = ReachEngine::symbolic();
    let result = engine.symbolic_set(&stg);
    assert!(
        matches!(result, Err(StgError::NodeBudgetExceeded { .. })),
        "{result:?}"
    );
    let after = engine
        .symbolic_set(&stg)
        .expect("manager reusable after injected exhaustion");
    assert_eq!(after.markings, reference.markings);
    assert_eq!(after.iterations, reference.iterations);
    drop(_guard);

    let _guard = arm(Fault::CancelAt { round: 0 }, 1);
    let mut engine = ReachEngine::symbolic();
    assert!(matches!(
        engine.symbolic_set(&stg),
        Err(StgError::Cancelled)
    ));
    let after = engine
        .symbolic_set(&stg)
        .expect("manager reusable after injected cancel");
    assert_eq!(after.markings, reference.markings);
    assert_eq!(after.iterations, reference.iterations);
}
