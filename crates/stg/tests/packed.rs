//! Property tests for the packed-marking representation: `PackedMarking`
//! must be a faithful, hash-compatible stand-in for the dense `Marking`
//! token vectors it replaced in the reachability hot path.

use proptest::prelude::*;
use rt_boolean::fxhash::FxBuildHasher;
use rt_stg::marking::{MarkingArena, MarkingLayout, PackedMarking};
use rt_stg::{Marking, PlaceId};
use std::hash::BuildHasher;

fn fx_hash(p: &PackedMarking) -> u64 {
    FxBuildHasher::default().hash_one(p)
}

/// Clamps raw u16s into `0..=bound` token counts.
fn tokens_from(raw: &[u16], bound: u16) -> Vec<u16> {
    raw.iter().map(|&r| r % (bound + 1)).collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Pack → unpack is the identity, and per-place reads agree, across
    /// random token vectors, place counts (1..=96 spans all inline
    /// variants) and bounds (1..=4 spans 1-, 2- and 3-bit fields).
    fn pack_unpack_roundtrip(
        raw in prop::collection::vec(any::<u16>(), 1..96),
        bound in 1u16..5,
    ) {
        let tokens = tokens_from(&raw, bound);
        let layout = MarkingLayout::new(tokens.len(), Some(bound));
        let marking = Marking::from_tokens(tokens.clone());
        let packed = PackedMarking::pack(&layout, &marking);
        prop_assert_eq!(packed.unpack(&layout), marking.clone());
        for (i, &t) in tokens.iter().enumerate() {
            prop_assert_eq!(packed.tokens(&layout, PlaceId(i as u32)), t);
        }
        prop_assert_eq!(packed.total_tokens(&layout), marking.total_tokens());
    }

    /// Packed equality coincides with token-vector equality, and equal
    /// packed markings hash identically (the arena's table correctness
    /// depends on both).
    fn hash_and_equality_agree_with_marking(
        raw_a in prop::collection::vec(any::<u16>(), 1..64),
        raw_b in prop::collection::vec(any::<u16>(), 1..64),
        bound in 1u16..5,
    ) {
        // Same layout requires same place count; reuse a's length.
        let places = raw_a.len();
        let a = tokens_from(&raw_a, bound);
        let mut b = tokens_from(&raw_b, bound);
        b.resize(places, 0);
        let layout = MarkingLayout::new(places, Some(bound));
        let ma = Marking::from_tokens(a);
        let mb = Marking::from_tokens(b);
        let pa = PackedMarking::pack(&layout, &ma);
        let pb = PackedMarking::pack(&layout, &mb);
        prop_assert_eq!(ma == mb, pa == pb);
        if pa == pb {
            prop_assert_eq!(fx_hash(&pa), fx_hash(&pb));
        }
    }

    /// Mutating one place via `set_tokens` equals repacking the mutated
    /// dense vector.
    fn set_tokens_matches_repack(
        raw in prop::collection::vec(any::<u16>(), 1..64),
        place_raw in any::<u16>(),
        new_count_raw in any::<u16>(),
        bound in 1u16..5,
    ) {
        let tokens = tokens_from(&raw, bound);
        let place = usize::from(place_raw) % tokens.len();
        let new_count = new_count_raw % (bound + 1);
        let layout = MarkingLayout::new(tokens.len(), Some(bound));
        let mut packed = PackedMarking::pack(&layout, &Marking::from_tokens(tokens.clone()));
        packed.set_tokens(&layout, PlaceId(place as u32), new_count);
        let mut mutated = tokens;
        mutated[place] = new_count;
        let expected = PackedMarking::pack(&layout, &Marking::from_tokens(mutated));
        prop_assert_eq!(packed, expected);
    }

    /// The arena is a bijection between distinct markings and dense ids.
    fn arena_ids_biject_with_distinct_markings(
        raws in prop::collection::vec(prop::collection::vec(any::<u16>(), 8), 1..40),
    ) {
        let layout = MarkingLayout::new(8, Some(3));
        let mut arena = MarkingArena::with_capacity(layout, 16);
        let mut reference: Vec<Vec<u16>> = Vec::new();
        for raw in &raws {
            let tokens = tokens_from(raw, 3);
            let packed =
                PackedMarking::pack(&layout, &Marking::from_tokens(tokens.clone()));
            let (id, fresh) = arena.intern(packed.clone());
            match reference.iter().position(|t| *t == tokens) {
                Some(pos) => {
                    prop_assert!(!fresh);
                    prop_assert_eq!(id.index(), pos);
                }
                None => {
                    prop_assert!(fresh);
                    prop_assert_eq!(id.index(), reference.len());
                    reference.push(tokens);
                }
            }
            prop_assert_eq!(arena.resolve(id), &packed);
        }
        prop_assert_eq!(arena.len(), reference.len());
    }
}
