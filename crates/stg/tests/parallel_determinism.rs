//! Property tests for the sharded explicit BFS: at every thread count
//! the parallel walk must produce a **bit-identical** [`StateGraph`] to
//! the serial path — same state numbering, same arc rows in the same
//! order, same codes, same packed markings — across the full corpus,
//! wide (> 64-place) models included.
//!
//! This is the companion guard to `csr_order.rs`: that test pins the
//! serial CSR order to the historical nested-`Vec` explorer, and this
//! one pins every parallel configuration to the serial order, so
//! synthesis sees one canonical state numbering no matter how many
//! cores the walk used.

use proptest::prelude::*;
use rt_stg::engine::ReachEngine;
use rt_stg::reach::{count_markings_with, explore_with, ExploreOptions};
use rt_stg::{corpus, models, StateGraph, Stg};

/// The sweep corpus: paper models, scaling generators, the `.g` corpus
/// and the wide (> 64-place) models of [`corpus::wide`].
fn sweep() -> Vec<(String, Stg)> {
    let mut specs: Vec<(String, Stg)> = vec![
        ("handshake".into(), models::handshake_stg()),
        ("fifo".into(), models::fifo_stg()),
        ("fifo_csc".into(), models::fifo_stg_csc()),
        ("celement".into(), models::celement_stg()),
        ("chain5".into(), models::chain_stg(5)),
        ("ring10_3".into(), models::ring_stg(10, 3)),
    ];
    for (name, text) in corpus::all() {
        specs.push((name.to_string(), corpus::parse(text).expect("parses")));
    }
    for (name, stg) in corpus::wide() {
        specs.push((name, stg));
    }
    specs
}

fn options(threads: usize) -> ExploreOptions {
    ExploreOptions {
        threads,
        ..ExploreOptions::default()
    }
}

/// Field-by-field bit-identity of two state graphs, with a model name
/// in every assertion message.
fn assert_graphs_identical(name: &str, threads: usize, serial: &StateGraph, parallel: &StateGraph) {
    assert_eq!(
        parallel.state_count(),
        serial.state_count(),
        "{name} x{threads}: state count"
    );
    assert_eq!(
        parallel.arc_count(),
        serial.arc_count(),
        "{name} x{threads}: arc count"
    );
    assert_eq!(
        parallel.initial(),
        serial.initial(),
        "{name} x{threads}: initial"
    );
    for state in serial.states() {
        assert_eq!(
            parallel.code(state),
            serial.code(state),
            "{name} x{threads}: code of {state}"
        );
        assert_eq!(
            parallel.successors(state),
            serial.successors(state),
            "{name} x{threads}: successor row of {state}"
        );
        assert_eq!(
            parallel.predecessors(state),
            serial.predecessors(state),
            "{name} x{threads}: predecessor row of {state}"
        );
        assert_eq!(
            parallel.packed_marking(state),
            serial.packed_marking(state),
            "{name} x{threads}: marking of {state}"
        );
    }
}

#[test]
fn sharded_walk_is_bit_identical_across_the_sweep_at_1_2_and_8_threads() {
    for (name, stg) in sweep() {
        let serial = explore_with(&stg, &options(1)).unwrap_or_else(|e| panic!("{name}: {e}"));
        let serial_count =
            count_markings_with(&stg, &options(1)).unwrap_or_else(|e| panic!("{name}: {e}"));
        for threads in [1usize, 2, 8] {
            let parallel = explore_with(&stg, &options(threads))
                .unwrap_or_else(|e| panic!("{name} x{threads}: {e}"));
            assert_graphs_identical(&name, threads, &serial, &parallel);
            let count = count_markings_with(&stg, &options(threads))
                .unwrap_or_else(|e| panic!("{name} x{threads}: {e}"));
            assert_eq!(count, serial_count, "{name} x{threads}: counting walk");
        }
    }
}

#[test]
fn engine_summaries_agree_with_graphs_at_every_thread_count() {
    // The engine façade wired to the sharded walk: summaries (counting
    // mode) and graphs (building mode) must stay mutually consistent.
    for (name, stg) in corpus::wide() {
        let mut serial = ReachEngine::explicit();
        let baseline = serial
            .summary(&stg)
            .unwrap_or_else(|e| panic!("{name}: {e}"));
        for threads in [2usize, 8] {
            let mut engine = ReachEngine::explicit().with_threads(threads);
            let summary = engine
                .summary(&stg)
                .unwrap_or_else(|e| panic!("{name}: {e}"));
            assert_eq!(summary, baseline, "{name} x{threads}");
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// Random (model, thread-count) pairs, including oversubscribed
    /// widths well past this machine's core count: the graph must be
    /// bit-identical to serial every single time.
    #[test]
    fn random_thread_counts_reproduce_the_serial_graph(
        seed in 0u64..1 << 16,
        visits in 1usize..6,
    ) {
        let specs = sweep();
        let mut s = seed | 1;
        for _ in 0..visits {
            s = s.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            let (name, stg) = &specs[(s >> 33) as usize % specs.len()];
            s = s.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            let threads = 2 + (s >> 33) as usize % 7; // 2..=8
            let serial = explore_with(stg, &options(1))
                .unwrap_or_else(|e| panic!("{name}: {e}"));
            let parallel = explore_with(stg, &options(threads))
                .unwrap_or_else(|e| panic!("{name} x{threads}: {e}"));
            assert_graphs_identical(name, threads, &serial, &parallel);
        }
    }
}
