//! Property-based tests for the STG substrate: reachability invariants
//! on randomly generated live specifications, `.g` round-trips, and
//! state-code bookkeeping.

use proptest::prelude::*;
use rt_stg::{explore, models, parse, Edge, SignalKind, Stg};

/// Builds a random "token ring" STG: `n` signals, each signal's rise and
/// fall chained around a cycle (always live, safe and consistent).
fn random_ring(n: usize, marked_at: usize) -> Stg {
    let mut stg = Stg::new(format!("ring{n}"));
    let signals: Vec<_> = (0..n)
        .map(|i| {
            let kind = if i == 0 {
                SignalKind::Input
            } else {
                SignalKind::Output
            };
            stg.add_signal(format!("s{i}"), kind).expect("fresh")
        })
        .collect();
    let mut transitions = Vec::new();
    for &s in &signals {
        transitions.push(stg.transition_for(s, Edge::Rise));
    }
    for &s in &signals {
        transitions.push(stg.transition_for(s, Edge::Fall));
    }
    for i in 0..transitions.len() {
        let from = transitions[i];
        let to = transitions[(i + 1) % transitions.len()];
        if i == marked_at {
            stg.marked_arc(from, to);
        } else {
            stg.arc(from, to);
        }
    }
    stg
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn ring_reachability_is_linear_and_connected(
        n in 2usize..7,
        marked in 0usize..4,
    ) {
        let marked = marked % (2 * n);
        let stg = random_ring(n, marked);
        let sg = explore(&stg).expect("rings are live and consistent");
        // A single token around a 2n-transition ring: exactly 2n states.
        prop_assert_eq!(sg.state_count(), 2 * n);
        prop_assert!(sg.is_strongly_connected());
        prop_assert!(sg.deadlock_states().is_empty());
    }

    #[test]
    fn successor_codes_differ_in_exactly_the_fired_bit(
        n in 2usize..6,
    ) {
        let stg = random_ring(n, 0);
        let sg = explore(&stg).expect("explores");
        for state in sg.states() {
            for arc in sg.successors(state) {
                let diff = sg.code(state) ^ sg.code(arc.to);
                match arc.event {
                    Some(ev) => {
                        prop_assert_eq!(diff, 1 << ev.signal.index());
                        prop_assert_eq!(
                            sg.signal_value(arc.to, ev.signal),
                            ev.edge.target_value()
                        );
                    }
                    None => prop_assert_eq!(diff, 0),
                }
            }
        }
    }

    #[test]
    fn g_roundtrip_preserves_state_space(n in 2usize..6, marked in 0usize..4) {
        let marked = marked % (2 * n);
        let stg = random_ring(n, marked);
        let text = parse::write_g(&stg);
        let parsed = parse_g_ok(&text);
        let a = explore(&stg).expect("original explores");
        let b = explore(&parsed).expect("round trip explores");
        prop_assert_eq!(a.state_count(), b.state_count());
        prop_assert_eq!(a.arc_count(), b.arc_count());
    }

    #[test]
    fn excitation_partitions_every_state(n in 2usize..6) {
        let stg = random_ring(n, 1);
        let sg = explore(&stg).expect("explores");
        for state in sg.states() {
            for signal in sg.signals() {
                // implied_value is total and consistent with excitation.
                let implied = sg.implied_value(state, signal);
                match sg.excitation(state, signal) {
                    Some(Edge::Rise) => prop_assert!(implied),
                    Some(Edge::Fall) => prop_assert!(!implied),
                    None => prop_assert_eq!(implied, sg.signal_value(state, signal)),
                }
            }
        }
    }
}

fn parse_g_ok(text: &str) -> Stg {
    parse::parse_g(text).expect("writer output parses")
}

#[test]
fn paper_models_explore_deterministically() {
    // Not random, but worth pinning: repeated exploration is stable.
    for _ in 0..3 {
        let a = explore(&models::fifo_stg()).expect("explores");
        let b = explore(&models::fifo_stg()).expect("explores");
        assert_eq!(a.state_count(), b.state_count());
        assert_eq!(a.arc_count(), b.arc_count());
    }
}
