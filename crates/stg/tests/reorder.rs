//! Dynamic variable reordering end-to-end: sifted symbolic runs must
//! be *invisible* in every result — reach counts, set membership, CSC
//! verdicts and witnesses all bit-match the static orders — and
//! deterministic across runs. The loops here stay on the sub-wide
//! models with deliberately aggressive reorder triggers so sifting
//! actually fires many times in debug builds; the wide models run
//! under `RT_STG_FORCE_SIFT=1` in CI instead (see the workflow).

use rt_boolean::Bdd;
use rt_stg::engine::ReachEngine;
use rt_stg::reach::ExploreOptions;
use rt_stg::symbolic::csc::{csc_conflicts_symbolic_opts, CscWitness};
use rt_stg::symbolic::{reach_symbolic_in, reach_symbolic_with, VarOrder, AUTO_REVERSE_MIN_PLACES};
use rt_stg::{corpus, explore, StateGraph, StateId, Stg};

/// Reorder knobs hot enough that even the small corpus models sift
/// mid-fixpoint (the production defaults only fire on the wide nets).
fn aggressive_sift() -> ExploreOptions {
    ExploreOptions {
        var_order: VarOrder::Sift,
        reorder_growth: 1.1,
        reorder_min_nodes: 64,
        ..ExploreOptions::default()
    }
}

/// Every sweep model below the wide threshold — cheap enough to run
/// sifted in debug mode.
fn small_sweep() -> Vec<(String, Stg)> {
    corpus::sweep()
        .into_iter()
        .filter(|(_, stg)| stg.net().place_count() < 64)
        .collect()
}

fn state_by_marking(sg: &StateGraph, words: &[u64]) -> Option<StateId> {
    sg.states().find(|&s| sg.packed_marking(s).words() == words)
}

/// Replays a symbolic witness against the explicit graph (same
/// definition as the csc_symbolic suite).
fn verify_witness(name: &str, sg: &StateGraph, witness: &CscWitness) {
    let a = state_by_marking(sg, &witness.marking_a)
        .unwrap_or_else(|| panic!("{name}: witness marking A is not explicitly reachable"));
    let b = state_by_marking(sg, &witness.marking_b)
        .unwrap_or_else(|| panic!("{name}: witness marking B is not explicitly reachable"));
    assert_ne!(a, b, "{name}: witness states must be distinct");
    assert_eq!(sg.code(a), sg.code(b), "{name}: shared code");
    assert!(
        sg.implied_value(a, witness.signal) && !sg.implied_value(b, witness.signal),
        "{name}: witness pair must disagree on the reported signal"
    );
    assert!(
        sg.csc_conflicts()
            .iter()
            .any(|c| (c.a == a && c.b == b || c.a == b && c.b == a) && c.signal == witness.signal),
        "{name}: witness pair must appear in the explicit conflict list"
    );
}

#[test]
fn sifted_reach_is_exact_across_the_sweep() {
    let mut any_sifted = false;
    for (name, stg) in small_sweep() {
        let sg = explore(&stg).unwrap_or_else(|e| panic!("{name}: {e}"));
        let mut bdd = Bdd::new(0);
        let sifted = reach_symbolic_with(&stg, &mut bdd, &aggressive_sift())
            .unwrap_or_else(|e| panic!("{name}: {e}"));
        assert_eq!(
            sifted.markings,
            sg.state_count() as u64,
            "{name}: sifted marking count must match the explicit walk"
        );
        any_sifted |= sifted.sifts > 0;
        // Membership is preserved node-for-node: every explicitly
        // reachable marking is in the sifted set, and the counts
        // matching above means nothing extra snuck in.
        for s in sg.states() {
            assert!(
                sifted.contains(&bdd, sg.packed_marking(s).words()),
                "{name}: explicit state missing from the sifted set"
            );
        }
    }
    assert!(
        any_sifted,
        "the aggressive trigger must actually fire somewhere, or this suite tests nothing"
    );
}

#[test]
fn sifted_reach_is_deterministic() {
    for (name, stg) in small_sweep() {
        let run = || {
            let mut bdd = Bdd::new(0);
            let r = reach_symbolic_with(&stg, &mut bdd, &aggressive_sift()).expect("explores");
            (r.markings, r.bdd_nodes, r.sifts, bdd.current_order())
        };
        assert_eq!(run(), run(), "{name}: sifted runs must replay exactly");
    }
}

#[test]
fn sifted_csc_agrees_with_the_explicit_detector() {
    let options = aggressive_sift();
    let mut any_sifted = false;
    for (name, stg) in small_sweep() {
        let sg = explore(&stg).unwrap_or_else(|e| panic!("{name}: {e}"));
        let explicit = sg.csc_conflicts();
        let mut bdd = Bdd::new(0);
        let analysis = csc_conflicts_symbolic_opts(&stg, &mut bdd, VarOrder::Sift, &options)
            .unwrap_or_else(|e| panic!("{name}: {e}"));
        assert_eq!(
            analysis.conflicts,
            explicit.len() as u64,
            "{name}: sifted conflict count must equal the explicit one"
        );
        assert_eq!(analysis.markings, sg.state_count() as u64, "{name}");
        assert_eq!(
            analysis.deadlock_free,
            sg.deadlock_states().is_empty(),
            "{name}: deadlock flags must agree"
        );
        assert_eq!(
            analysis.strongly_connected,
            sg.is_strongly_connected(),
            "{name}: connectivity flags must agree"
        );
        for &(signal, count) in &analysis.per_signal {
            let explicit_count = explicit.iter().filter(|c| c.signal == signal).count() as u64;
            assert_eq!(count, explicit_count, "{name}: per-signal {signal:?}");
        }
        if let Some(witness) = &analysis.witness {
            verify_witness(&name, &sg, witness);
        } else {
            assert!(explicit.is_empty(), "{name}: missing witness");
        }
        any_sifted |= analysis.sifts > 0;
    }
    assert!(any_sifted, "the aggressive trigger must fire somewhere");
}

#[test]
fn sifted_csc_is_deterministic() {
    let stg = corpus::parse(corpus::VME_READ_G).expect("parses");
    let options = aggressive_sift();
    let run = || {
        let mut bdd = Bdd::new(0);
        let a = csc_conflicts_symbolic_opts(&stg, &mut bdd, VarOrder::Sift, &options)
            .expect("analyses");
        (a.conflicts, a.per_signal.clone(), a.bdd_nodes, a.sifts)
    };
    let first = run();
    assert!(first.0 > 0, "vme_read is a conflicted spec");
    assert_eq!(first, run(), "sifted analyses must replay exactly");
}

#[test]
fn engine_generational_collect_is_invisible_in_results() {
    let stg = rt_stg::models::fifo_stg();
    let mut engine = ReachEngine::symbolic();
    let baseline = engine.summary(&stg).expect("summarizes");
    let conflicts = engine.csc_conflicts_symbolic(&stg).expect("analyses");
    // Drop everything the queries left behind, keeping no roots: the
    // warm unique table survives (older-epoch nodes are pinned), and
    // re-running the same queries must reproduce every number.
    let evicted = engine.collect(&[]);
    let after = engine.summary(&stg).expect("summarizes");
    assert_eq!(baseline.markings, after.markings);
    assert_eq!(baseline.iterations, after.iterations);
    let conflicts_after = engine.csc_conflicts_symbolic(&stg).expect("analyses");
    assert_eq!(conflicts.conflicts, conflicts_after.conflicts);
    assert_eq!(conflicts.per_signal, conflicts_after.per_signal);
    assert!(engine.stats().collections >= 1);
    assert!(
        engine.stats().manager_reuses >= 1,
        "collect must not cost the engine its warm manager"
    );
    // Collect twice in a row: the second pass finds nothing new.
    engine.collect(&[]);
    let idle = engine.collect(&[]);
    assert_eq!(idle, 0, "an idle manager has no current-epoch garbage");
    let _ = evicted; // any value is legal; the invariants above are the test
}

#[test]
fn auto_order_crossover_matches_the_documented_threshold() {
    // One place below the documented crossover Auto keeps declaration
    // order; at the threshold it flips to the measured-better reverse.
    assert_eq!(
        VarOrder::Auto.resolved_for(AUTO_REVERSE_MIN_PLACES - 1),
        VarOrder::ByIndex
    );
    assert_eq!(
        VarOrder::Auto.resolved_for(AUTO_REVERSE_MIN_PLACES),
        VarOrder::ReverseIndex
    );
    // Sift's *static seed* order follows the same rule, so a sifted
    // run starts from the best static guess before improving on it.
    assert_eq!(
        VarOrder::Sift.resolved_for(AUTO_REVERSE_MIN_PLACES),
        VarOrder::ReverseIndex
    );
    // Explicit static orders are never second-guessed.
    assert_eq!(VarOrder::ByIndex.resolved_for(1000), VarOrder::ByIndex);
}

#[test]
fn default_entry_points_are_unaffected_by_the_reorder_machinery() {
    // The default (static) path must not sift: a fresh-manager default
    // run reports zero passes and an identity level permutation.
    let stg = rt_stg::models::fifo_stg();
    let mut bdd = Bdd::new(0);
    let r = reach_symbolic_in(&stg, &mut bdd).expect("explores");
    assert_eq!(r.sifts, 0);
    assert_eq!(r.sift_ns, 0);
    let order = bdd.current_order();
    assert!(
        order.iter().enumerate().all(|(l, &v)| l as u32 == v),
        "static runs must leave the level permutation untouched"
    );
}
