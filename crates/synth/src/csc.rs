//! Complete-state-coding resolution by state-signal insertion.
//!
//! The paper's FIFO specification (Figure 3) has CSC conflicts; `petrify`
//! resolves them by inserting the state signal `x` (Figures 4–5) using
//! *timing-aware* encoding. This module reproduces the mechanism: it
//! searches over pairs of simple places of the STG, inserting `x+` on one
//! and `x-` on the other, re-exploring, and keeping the valid insertion
//! with the cheapest logic. The cost function can be biased to keep the
//! state signal off the critical path (the paper's "timing-aware state
//! encoding"): insertions whose state-signal transitions trigger output
//! events are penalized.
//!
//! All re-exploration funnels through one [`ReachEngine`]
//! ([`resolve_csc_engine`]): the candidate search is the hottest
//! repeated-reachability loop in the pipeline, and the engine is the
//! seam that lets it run over either backend. On the symbolic backend
//! the accepted resolution is additionally **audited** against the
//! engine's persistent-manager symbolic marking count and the symbolic
//! conflict detector ([`SynthError::BackendMismatch`] /
//! [`SynthError::DetectorMismatch`] on divergence), so the two
//! analysers continuously cross-check each other in production use.
//!
//! ## The explicit/symbolic detector threshold
//!
//! The candidate loop has two interchangeable conflict detectors:
//!
//! * **explicit** — build the coded [`StateGraph`] per candidate and
//!   call [`StateGraph::csc_conflicts`]. Fastest for paper-scale
//!   controllers (tens of states), and the only path that yields the
//!   graph downstream logic synthesis consumes, so the accepted
//!   resolution carries `sg: Some(_)`.
//! * **symbolic** — ask the engine for
//!   [`rt_stg::engine::ReachEngine::csc_conflicts_symbolic`]: conflict
//!   counts, liveness flags and encoding costs all come off BDDs in the
//!   persistent manager, and **no explicit state graph is ever
//!   constructed** (`EngineStats::graph_builds` stays 0; the
//!   resolution carries `sg: None`). This is the path that scales past
//!   the explicit-enumeration wall on huge nets.
//!
//! [`CscOptions::symbolic_threshold`] arbitrates: on a
//! [`ReachBackend::Symbolic`] engine, nets with at least that many
//! places rank candidates symbolically; smaller nets keep the explicit
//! detector (whose per-candidate graphs are microseconds at that size
//! and whose literal-count costs are the historical tie-breakers). The
//! default, [`DEFAULT_SYMBOLIC_THRESHOLD`], switches over right where
//! packed markings spill past one machine word — below it the two
//! backends produce bit-identical resolutions, above it the symbolic
//! path may tie-break differently (its logic costs come from per-*code*
//! covers rather than per-*state* covers) while still accepting only
//! CSC-free, live, deadlock-free encodings. Set the threshold to 0 to
//! force the symbolic detector everywhere, or `usize::MAX` to disable
//! it.

use std::collections::BTreeSet;
use std::sync::atomic::{AtomicBool, Ordering};

use rt_boolean::{minimize, Cover, Cube};
use rt_stg::engine::{ReachBackend, ReachEngine};
use rt_stg::par::{effective_threads, parallel_argmin};
use rt_stg::petri::PlaceId;
use rt_stg::reach::count_markings_with;
use rt_stg::stg::TransitionLabel;
use rt_stg::symbolic::csc::CscAnalysis;
use rt_stg::{Edge, SignalKind, StateGraph, Stg, TransitionId};

use crate::error::SynthError;
use crate::regions::{derive_functions, unreachable_cover, LocalDontCares};

/// Default [`CscOptions::symbolic_threshold`]: the first place count
/// whose packed markings no longer fit one machine word — the size
/// class the paper's wide adder/fabric workloads start at, and where
/// per-candidate explicit graphs stop being microseconds.
pub const DEFAULT_SYMBOLIC_THRESHOLD: usize = 65;

/// Outcome of CSC resolution.
#[derive(Debug, Clone)]
pub struct CscResolution {
    /// The (possibly rewritten) STG, CSC-free.
    pub stg: Stg,
    /// Its state graph — `Some` on the explicit-detector path, `None`
    /// when the symbolic path accepted the encoding without ever
    /// enumerating states (see the module docs on the threshold).
    pub sg: Option<StateGraph>,
    /// Names of inserted state signals (empty when none were needed).
    pub inserted: Vec<String>,
    /// Cost of the chosen encoding (minimized literal count).
    pub cost: usize,
    /// `true` when the search ran out of budget before finishing: the
    /// resolution is the best candidate found so far (possibly still
    /// conflicted) rather than a verified CSC-free encoding. The engine
    /// records [`rt_stg::Degradation::PartialSynthesis`] alongside.
    pub truncated: bool,
}

/// Options for [`resolve_csc`].
///
/// `PartialEq`/`Eq`/`Hash` exist because the options are part of the
/// service layer's memo-cache key: a resolution is a pure function of
/// the STG content *and* this tuning, so two requests may share a
/// cached result only when both match.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct CscOptions {
    /// Maximum number of state signals to insert.
    pub max_signals: usize,
    /// Penalty added per output event directly triggered by a state
    /// signal transition (the timing-aware bias; 0 disables it).
    pub critical_path_penalty: usize,
    /// Worker-pool width for the candidate search (`0`, the default,
    /// resolves to one worker per available core; `1` runs serially).
    /// Each worker evaluates whole candidate insertions on a private
    /// [`ReachEngine`] of the caller's backend, and the deterministic
    /// `(cost, index)` reduction of [`rt_stg::par::parallel_argmin`]
    /// guarantees the winner is identical at every width.
    pub threads: usize,
    /// Place count at or above which a [`ReachBackend::Symbolic`]
    /// engine ranks candidates with the symbolic conflict detector
    /// instead of building explicit state graphs (see the module
    /// docs). Irrelevant on explicit-backend engines.
    pub symbolic_threshold: usize,
}

impl Default for CscOptions {
    fn default() -> Self {
        CscOptions {
            max_signals: 3,
            critical_path_penalty: 4,
            threads: 0,
            symbolic_threshold: DEFAULT_SYMBOLIC_THRESHOLD,
        }
    }
}

/// Resolves CSC conflicts of `stg` by inserting up to
/// `options.max_signals` state signals.
///
/// # Errors
///
/// * [`SynthError::CscUnresolvable`] when no insertion sequence works;
/// * [`SynthError::Stg`] when the input STG itself fails exploration.
pub fn resolve_csc(stg: &Stg) -> Result<CscResolution, SynthError> {
    resolve_csc_with(stg, &CscOptions::default())
}

/// [`resolve_csc`] with explicit options, run on a throwaway
/// explicit-backend engine.
pub fn resolve_csc_with(stg: &Stg, options: &CscOptions) -> Result<CscResolution, SynthError> {
    resolve_csc_engine(stg, options, &mut ReachEngine::explicit())
}

/// [`resolve_csc_with`] through a caller-owned [`ReachEngine`].
///
/// Every candidate re-exploration of the search goes through `engine`,
/// so a shared engine accumulates its statistics (and, on the symbolic
/// backend, its warm BDD manager) across the whole resolution — and
/// across *multiple* resolutions when the caller keeps the engine
/// alive. The accepted result is backend-independent: the candidate
/// ranking uses only the explicitly built state graphs. On
/// [`rt_stg::ReachBackend::Symbolic`] the final resolution is audited
/// against the symbolic marking count.
///
/// # Errors
///
/// [`resolve_csc_with`]'s errors, plus [`SynthError::BackendMismatch`]
/// if the symbolic audit disagrees with the explicit graph.
pub fn resolve_csc_engine(
    stg: &Stg,
    options: &CscOptions,
    engine: &mut ReachEngine,
) -> Result<CscResolution, SynthError> {
    if engine.backend() == ReachBackend::Symbolic
        && stg.net().place_count() >= options.symbolic_threshold
    {
        return resolve_csc_symbolic(stg, options, engine);
    }
    let sg = engine.state_graph(stg)?;
    if sg.csc_conflicts().is_empty() {
        let cost = encoding_cost(&sg, 0);
        let resolution = CscResolution {
            stg: stg.clone(),
            sg: Some(sg),
            inserted: Vec::new(),
            cost,
            truncated: false,
        };
        audit_resolution(&resolution, engine)?;
        return Ok(resolution);
    }
    let mut attempts = 0;
    let mut current = stg.clone();
    let mut before = sg.csc_conflicts().len();
    // Best-so-far state for a budget-truncated partial result: the
    // conflict-rank formula of the candidate loop, so a partial
    // resolution's cost is comparable to rejected candidates'.
    let mut current_sg = Some(sg);
    let mut current_cost = 1_000 + before * 100;
    let mut inserted = Vec::new();
    let mut truncated = false;
    for round in 0..options.max_signals {
        let name = format!("csc{round}");
        let (best, round_truncated) =
            best_insertion(&current, &name, options, before, engine, &mut attempts)?;
        truncated |= round_truncated;
        match best {
            Some((next_stg, next_sg, cost)) => {
                inserted.push(name);
                if next_sg.csc_conflicts().is_empty() {
                    let resolution = CscResolution {
                        stg: next_stg,
                        sg: Some(next_sg),
                        inserted,
                        cost,
                        truncated: false,
                    };
                    audit_resolution(&resolution, engine)?;
                    return Ok(resolution);
                }
                before = next_sg.csc_conflicts().len();
                current = next_stg;
                current_sg = Some(next_sg);
                current_cost = cost;
            }
            None => break,
        }
    }
    if truncated {
        // The budget cut the search short: hand back the best encoding
        // reached so far (still conflicted) instead of aborting, and
        // let the engine's stats record why. No audit — the result is
        // not an accepted CSC-free encoding.
        engine.note_degradation(rt_stg::Degradation::PartialSynthesis);
        return Ok(CscResolution {
            stg: current,
            sg: current_sg,
            inserted,
            cost: current_cost,
            truncated: true,
        });
    }
    Err(SynthError::CscUnresolvable { attempts })
}

/// The fully symbolic resolution loop: every candidate is scored by the
/// engine's symbolic CSC analysis — conflict counts, deadlock freedom,
/// strong connectivity and (for CSC-free candidates) per-code logic
/// costs all come off BDDs in the persistent manager, and **no
/// explicit [`StateGraph`] is ever constructed** (the engine's
/// `graph_builds` counter stays where it was; `symbolic_csc` ticks
/// instead). The accepted resolution therefore carries `sg: None`.
///
/// The accepted encoding is audited against the *explicit* analyser
/// anyway — via the counting-only packed walk
/// ([`rt_stg::reach::count_markings_with`]), which enumerates markings
/// without building a graph — so the two reachability implementations
/// still cross-check each other on every accepted resolution.
fn resolve_csc_symbolic(
    stg: &Stg,
    options: &CscOptions,
    engine: &mut ReachEngine,
) -> Result<CscResolution, SynthError> {
    let analysis = engine.csc_conflicts_symbolic(stg)?;
    if analysis.conflicts == 0 {
        let cost = symbolic_encoding_cost(stg, &analysis, engine, 0);
        audit_symbolic_acceptance(stg, analysis.markings, engine)?;
        return Ok(CscResolution {
            stg: stg.clone(),
            sg: None,
            inserted: Vec::new(),
            cost,
            truncated: false,
        });
    }
    let mut attempts = 0;
    let mut current = stg.clone();
    let mut before = analysis.conflicts;
    let mut current_cost = 1_000 + (before.min((usize::MAX / 200) as u64) as usize) * 100;
    let mut inserted = Vec::new();
    let mut truncated = false;
    for round in 0..options.max_signals {
        let name = format!("csc{round}");
        let (best, round_truncated) =
            best_insertion_symbolic(&current, &name, options, before, engine, &mut attempts)?;
        truncated |= round_truncated;
        match best {
            Some((next_stg, after, markings, cost)) => {
                inserted.push(name);
                if after == 0 {
                    audit_symbolic_acceptance(&next_stg, markings, engine)?;
                    return Ok(CscResolution {
                        stg: next_stg,
                        sg: None,
                        inserted,
                        cost,
                        truncated: false,
                    });
                }
                before = after;
                current = next_stg;
                current_cost = cost;
            }
            None => break,
        }
    }
    if truncated {
        // Mirror of the explicit loop's partial result: best-so-far
        // encoding under an exhausted budget, never an abort.
        engine.note_degradation(rt_stg::Degradation::PartialSynthesis);
        return Ok(CscResolution {
            stg: current,
            sg: None,
            inserted,
            cost: current_cost,
            truncated: true,
        });
    }
    Err(SynthError::CscUnresolvable { attempts })
}

/// Acceptance audit of the symbolic path: the symbolic reachable-
/// marking count of the accepted STG must match the explicit
/// counting-only walk (no state graph, no 64-signal cap).
///
/// On nets past the explicit walk's state limit — or past the caller's
/// soft [`rt_stg::Budget`] — the audit is **skipped**, not failed:
/// those are precisely the nets the symbolic path exists for, and an
/// enumeration-bounded cross-check cannot be a hard gate there. Every
/// other explicit-walk failure (unboundedness, deadlock under
/// `forbid_deadlock`) still propagates — it signals a real divergence
/// between the analysers' net semantics.
fn audit_symbolic_acceptance(
    stg: &Stg,
    symbolic_markings: u64,
    engine: &mut ReachEngine,
) -> Result<(), SynthError> {
    let count = match count_markings_with(stg, engine.options()) {
        Ok(count) => count,
        Err(rt_stg::StgError::StateLimitExceeded(_)) => return Ok(()),
        Err(err) if err.is_resource_exhaustion() => return Ok(()),
        Err(err) => return Err(err.into()),
    };
    if count.markings != symbolic_markings {
        return Err(SynthError::BackendMismatch {
            explicit: count.markings,
            symbolic: symbolic_markings,
        });
    }
    Ok(())
}

/// Symbolic-backend audit of an explicit-path resolution: the resolved
/// STG's explicit state count must match the persistent manager's
/// symbolic marking count, **and** the symbolic conflict detector must
/// agree with [`StateGraph::csc_conflicts`] on the accepted graph —
/// both detectors cross-check each other on every accepted resolution.
fn audit_resolution(
    resolution: &CscResolution,
    engine: &mut ReachEngine,
) -> Result<(), SynthError> {
    let sg = resolution
        .sg
        .as_ref()
        .expect("the explicit path always carries its graph");
    crate::regions::audit_against_symbolic(engine, &resolution.stg, sg)?;
    if engine.backend() == ReachBackend::Symbolic {
        let analysis = engine.csc_conflicts_symbolic(&resolution.stg)?;
        let explicit = sg.csc_conflicts().len() as u64;
        if analysis.conflicts != explicit {
            return Err(SynthError::DetectorMismatch {
                explicit,
                symbolic: analysis.conflicts,
            });
        }
    }
    Ok(())
}

/// One candidate insertion point of the search, cheap to enumerate up
/// front so the worker pool can materialize and evaluate them
/// independently.
#[derive(Debug, Clone, Copy)]
enum InsertionSpec {
    /// Splice `x+`/`x-` into a pair of simple places.
    Place {
        plus: PlaceId,
        minus: PlaceId,
        token_after: bool,
    },
    /// Insert `x+`/`x-` after whole transitions.
    Trans {
        plus: TransitionId,
        minus: TransitionId,
    },
}

/// Enumerates every candidate insertion in the canonical (serial
/// search) order. The pool's deterministic reduction ties winners to
/// this order, so it must stay stable.
fn insertion_specs(stg: &Stg) -> Vec<InsertionSpec> {
    let places = simple_places(stg);
    let mut specs = Vec::new();
    for &plus in &places {
        for &minus in &places {
            if plus == minus {
                continue;
            }
            for token_after in [false, true] {
                specs.push(InsertionSpec::Place {
                    plus,
                    minus,
                    token_after,
                });
            }
        }
    }
    let transitions: Vec<_> = stg.net().transitions().collect();
    for &plus in &transitions {
        for &minus in &transitions {
            if plus == minus {
                continue;
            }
            specs.push(InsertionSpec::Trans { plus, minus });
        }
    }
    specs
}

/// A candidate search's verdict: the winning candidate (if any) plus
/// the truncated flag — `true` when at least one candidate was
/// disqualified only because the engine's budget ran out mid-eval.
type SearchOutcome<T> = (Option<T>, bool);

/// Tries every candidate insertion point on the worker pool; returns
/// the best valid insertion as `(stg, sg, cost)`. `before` is the
/// conflict count of `stg` itself (already computed by the caller — no
/// re-exploration).
///
/// Every worker owns a private explicit [`ReachEngine`] (persistent
/// symbolic managers are not shared across threads; candidate ranking
/// is purely explicit anyway — see [`resolve_csc_engine`]), and the
/// workers' usage counters are folded back into `engine` afterwards,
/// so a caller watching [`ReachEngine::stats`] sees the same
/// `graph_builds` totals as the historical serial loop. The winner is
/// the `(cost, index)` minimum over the canonical candidate order —
/// bit-identical to the serial "first strictly better candidate wins"
/// scan at every pool width.
///
/// The second element of the `Ok` pair is the *truncated* flag: `true`
/// when at least one candidate was disqualified only because the
/// engine's [`rt_stg::Budget`] ran out mid-evaluation — the caller
/// turns that into a partial resolution instead of
/// [`SynthError::CscUnresolvable`].
///
/// # Errors
///
/// [`rt_stg::StgError::WorkerPanicked`] (as [`SynthError::Stg`]) when a
/// candidate evaluation panicked on the pool.
fn best_insertion(
    stg: &Stg,
    name: &str,
    options: &CscOptions,
    before: usize,
    engine: &mut ReachEngine,
    attempts: &mut usize,
) -> Result<SearchOutcome<(Stg, StateGraph, usize)>, SynthError> {
    let specs = insertion_specs(stg);
    *attempts += specs.len();
    let pool = effective_threads(options.threads);
    let mut worker_options = engine.options().clone();
    if pool > 1 {
        // Candidate-level parallelism replaces BFS-level sharding for
        // the search: candidate nets are small, and nesting the two
        // would oversubscribe the machine.
        worker_options.threads = 1;
    }

    let truncated = AtomicBool::new(false);
    let evaluate = |worker: &mut ReachEngine, index: usize| {
        let candidate = match specs[index] {
            InsertionSpec::Place {
                plus,
                minus,
                token_after,
            } => insert_state_signal_with(stg, name, plus, minus, token_after),
            InsertionSpec::Trans { plus, minus } => {
                insert_after_transitions(stg, name, plus, minus)
            }
        };
        let sg = match worker.state_graph(&candidate) {
            Ok(sg) => sg,
            Err(error) => {
                if error.is_resource_exhaustion() {
                    truncated.store(true, Ordering::Relaxed);
                }
                return None;
            }
        };
        if !sg.is_strongly_connected() || !sg.deadlock_states().is_empty() {
            return None;
        }
        let after = sg.csc_conflicts().len();
        if after >= before {
            return None; // insertion must strictly help
        }
        let penalty = critical_penalty(&candidate, name) * options.critical_path_penalty;
        let cost = if after == 0 {
            encoding_cost(&sg, penalty)
        } else {
            // Not yet CSC-free: rank by remaining conflicts.
            1_000 + after * 100 + penalty
        };
        Some((cost, (candidate, sg)))
    };

    let (best, workers) = parallel_argmin(
        specs.len(),
        options.threads,
        || ReachEngine::with_options(engine.backend(), worker_options.clone()),
        evaluate,
    )?;
    for worker in &workers {
        engine.absorb_stats(worker.stats());
    }
    Ok((
        best.map(|(_, cost, (candidate, sg))| (candidate, sg, cost)),
        truncated.into_inner(),
    ))
}

/// The symbolic twin of [`best_insertion`]: candidates are scored by
/// the engine's symbolic CSC analysis instead of explicit state
/// graphs. Returns the winner as `(stg, remaining conflicts, symbolic
/// marking count, cost)`.
///
/// Every worker owns a private *symbolic* [`ReachEngine`] — one
/// persistent manager per worker, since managers are not shared across
/// threads (see `rt_stg::engine`'s module docs) — and the usual
/// deterministic `(cost, index)` reduction picks the winner. Worker
/// counters (including `symbolic_csc`) fold back into `engine`.
///
/// Truncation and errors follow [`best_insertion`]'s contract exactly.
fn best_insertion_symbolic(
    stg: &Stg,
    name: &str,
    options: &CscOptions,
    before: u64,
    engine: &mut ReachEngine,
    attempts: &mut usize,
) -> Result<SearchOutcome<(Stg, u64, u64, usize)>, SynthError> {
    let specs = insertion_specs(stg);
    *attempts += specs.len();
    let pool = effective_threads(options.threads);
    let mut worker_options = engine.options().clone();
    if pool > 1 {
        worker_options.threads = 1;
    }

    let truncated = AtomicBool::new(false);
    let evaluate = |worker: &mut ReachEngine, index: usize| {
        let candidate = match specs[index] {
            InsertionSpec::Place {
                plus,
                minus,
                token_after,
            } => insert_state_signal_with(stg, name, plus, minus, token_after),
            InsertionSpec::Trans { plus, minus } => {
                insert_after_transitions(stg, name, plus, minus)
            }
        };
        // An inconsistent or diverging candidate errors, exactly like a
        // failed explicit exploration: disqualified — unless the only
        // problem was the budget, which flags truncation instead.
        let analysis = match worker.csc_conflicts_symbolic(&candidate) {
            Ok(analysis) => analysis,
            Err(error) => {
                if error.is_resource_exhaustion() {
                    truncated.store(true, Ordering::Relaxed);
                }
                return None;
            }
        };
        if !analysis.strongly_connected || !analysis.deadlock_free {
            return None;
        }
        let after = analysis.conflicts;
        if after >= before {
            return None; // insertion must strictly help
        }
        let penalty = critical_penalty(&candidate, name) * options.critical_path_penalty;
        let cost = if after == 0 {
            symbolic_encoding_cost(&candidate, &analysis, worker, penalty)
        } else {
            // Not yet CSC-free: rank by remaining conflicts, the same
            // formula as the explicit loop. Pair-space counts can be
            // astronomically large on huge nets, so clamp before the
            // scale-up — an overflow here would hand a massively
            // conflicted candidate an artificially tiny cost.
            let clamped = after.min((usize::MAX / 200) as u64) as usize;
            1_000 + clamped * 100 + penalty
        };
        Some((cost, (candidate, after, analysis.markings)))
    };

    let (best, workers) = parallel_argmin(
        specs.len(),
        options.threads,
        || ReachEngine::with_options(engine.backend(), worker_options.clone()),
        evaluate,
    )?;
    for worker in &workers {
        engine.absorb_stats(worker.stats());
    }
    Ok((
        best.map(|(_, cost, (candidate, after, markings))| (candidate, after, markings, cost)),
        truncated.into_inner(),
    ))
}

/// Minimized literal count of a CSC-free candidate, derived from the
/// symbolic analysis' per-*code* excitation table instead of a state
/// graph: one minterm cube per reachable code (CSC-freeness makes
/// excitation a function of the code), unreachable codes as global
/// don't-cares — the same monotonic-cover rules as
/// [`crate::regions::derive_functions`], so the number is the same
/// kind of logic cost, merely derived without enumeration. Falls back
/// to a prohibitive cost when the net has nothing to implement or more
/// code bits than a cover can carry.
fn symbolic_encoding_cost(
    stg: &Stg,
    analysis: &CscAnalysis,
    engine: &mut ReachEngine,
    penalty: usize,
) -> usize {
    let vars = stg.signal_count();
    if vars > 16 {
        // Two-level cover costs live in the truth-table regime (the
        // unreachable-code don't-care complement is exponential past
        // it — the explicit path never derives costs there either, as
        // `bench_reach` skips synthesis above 16 signals). Rank wide
        // CSC-free candidates by the timing-aware penalty alone; ties
        // break by candidate order.
        return penalty;
    }
    let Some(manager) = engine.manager_mut() else {
        return usize::MAX / 2;
    };
    let table = analysis.code_table(manager);
    if table.implemented.is_empty() {
        return usize::MAX / 2;
    }
    let reachable: BTreeSet<u64> = table.rows.iter().map(|r| r.code).collect();
    let unreachable_dc = unreachable_cover(vars, &reachable);
    let mut total = penalty;
    for (k, &signal) in table.implemented.iter().enumerate() {
        let mut set_on = Cover::empty(vars);
        let mut set_dc = unreachable_dc.clone();
        let mut reset_on = Cover::empty(vars);
        let mut reset_dc = unreachable_dc.clone();
        for row in &table.rows {
            let cube = Cube::minterm(vars, row.code);
            match row.excited[k] {
                Some(Edge::Rise) => set_on.push(cube),
                Some(Edge::Fall) => reset_on.push(cube),
                None => {
                    if row.code >> signal.index() & 1 == 1 {
                        set_dc.push(cube);
                    } else {
                        reset_dc.push(cube);
                    }
                }
            }
        }
        let set = minimize(&set_on, &set_dc);
        let reset = minimize(&reset_on, &reset_dc);
        total += set.literal_count() + reset.literal_count() + 2;
    }
    total
}

/// Simple places: exactly one producer and one consumer — safe insertion
/// points for state-signal splicing.
pub fn simple_places(stg: &Stg) -> Vec<PlaceId> {
    let net = stg.net();
    net.places()
        .filter(|&p| net.producers(p).len() == 1 && net.consumers(p).len() == 1)
        .collect()
}

/// Rebuilds `stg` with a fresh internal signal whose rising transition is
/// spliced into `place_plus` and falling transition into `place_minus`.
/// A token on a spliced place rests *before* the new transition.
pub fn insert_state_signal(
    stg: &Stg,
    name: &str,
    place_plus: PlaceId,
    place_minus: PlaceId,
) -> Stg {
    insert_state_signal_with(stg, name, place_plus, place_minus, false)
}

/// Like [`insert_state_signal`], but `token_after` chooses whether a
/// token on a spliced marked place rests before (`false`) or after
/// (`true`) the new transition — the two placements give different
/// initial values and firing orders, and the search tries both.
pub fn insert_state_signal_with(
    stg: &Stg,
    name: &str,
    place_plus: PlaceId,
    place_minus: PlaceId,
    token_after: bool,
) -> Stg {
    let net = stg.net();
    let mut out = Stg::new(format!("{}_{}", stg.name(), name));
    // Copy the signal table and add the new internal signal.
    for signal in stg.signals() {
        out.add_signal(stg.signal_name(signal), stg.signal_kind(signal))
            .expect("copied signals are unique");
    }
    let x = out
        .add_signal(name, SignalKind::Internal)
        .expect("fresh state-signal name");
    // Copy transitions in order (ids are preserved).
    for t in net.transitions() {
        match stg.label(t) {
            TransitionLabel::Event(ev) => {
                out.transition(ev);
            }
            TransitionLabel::Silent => {
                out.silent(net.transition_name(t));
            }
        }
    }
    let x_plus = out.transition_for(x, rt_stg::Edge::Rise);
    let x_minus = out.transition_for(x, rt_stg::Edge::Fall);
    // Copy places, splitting the two chosen ones.
    let marking = stg.initial_marking();
    for p in net.places() {
        let tokens = marking.tokens(p);
        if (p == place_plus || p == place_minus) && !net.producers(p).is_empty() {
            let splice = if p == place_plus { x_plus } else { x_minus };
            let producer = net.producers(p)[0];
            let consumer = net.consumers(p)[0];
            let p1 = out.add_place(format!("{}_in", net.place_name(p)));
            let p2 = out.add_place(format!("{}_out", net.place_name(p)));
            out.arc_to_place(producer, p1);
            out.arc_from_place(p1, splice);
            out.arc_to_place(splice, p2);
            out.arc_from_place(p2, consumer);
            if token_after {
                out.set_tokens(p2, tokens);
            } else {
                out.set_tokens(p1, tokens);
            }
        } else {
            let copy = out.add_place(net.place_name(p));
            for &producer in net.producers(p) {
                out.arc_to_place(producer, copy);
            }
            for &consumer in net.consumers(p) {
                out.arc_from_place(copy, consumer);
            }
            out.set_tokens(copy, tokens);
        }
    }
    out
}

/// Rebuilds `stg` with a fresh internal signal inserted *after whole
/// transitions*: `x+` fires right after `after_plus` (taking over its
/// entire postset) and `x-` right after `after_minus`. Often succeeds
/// where single-place splicing cannot, because the new signal serializes
/// against every successor at once.
pub fn insert_after_transitions(
    stg: &Stg,
    name: &str,
    after_plus: rt_stg::TransitionId,
    after_minus: rt_stg::TransitionId,
) -> Stg {
    let net = stg.net();
    let mut out = Stg::new(format!("{}_{}", stg.name(), name));
    for signal in stg.signals() {
        out.add_signal(stg.signal_name(signal), stg.signal_kind(signal))
            .expect("copied signals are unique");
    }
    let x = out
        .add_signal(name, SignalKind::Internal)
        .expect("fresh state-signal name");
    for tr in net.transitions() {
        match stg.label(tr) {
            TransitionLabel::Event(ev) => {
                out.transition(ev);
            }
            TransitionLabel::Silent => {
                out.silent(net.transition_name(tr));
            }
        }
    }
    let x_plus = out.transition_for(x, rt_stg::Edge::Rise);
    let x_minus = out.transition_for(x, rt_stg::Edge::Fall);
    // Chain each spliced transition to its new successor.
    let chain = |out: &mut Stg, from: rt_stg::TransitionId, to: rt_stg::TransitionId| {
        let p = out.add_place(format!("splice_{}", out.net().place_count()));
        out.arc_to_place(from, p);
        out.arc_from_place(p, to);
    };
    chain(&mut out, after_plus, x_plus);
    chain(&mut out, after_minus, x_minus);
    let marking = stg.initial_marking();
    for p in net.places() {
        let copy = out.add_place(net.place_name(p));
        for &producer in net.producers(p) {
            // Arcs formerly produced by the spliced transitions now come
            // from the new signal's transitions.
            let source = if producer == after_plus {
                x_plus
            } else if producer == after_minus {
                x_minus
            } else {
                producer
            };
            out.arc_to_place(source, copy);
        }
        for &consumer in net.consumers(p) {
            out.arc_from_place(copy, consumer);
        }
        out.set_tokens(copy, marking.tokens(p));
    }
    out
}

/// Minimized literal count of every implemented signal — the logic cost
/// of an encoding.
fn encoding_cost(sg: &StateGraph, penalty: usize) -> usize {
    match derive_functions(sg, &LocalDontCares::none()) {
        Ok(funcs) => {
            let mut total = penalty;
            for spec in &funcs.specs {
                let set = minimize(&spec.set_on, &spec.set_dc);
                let reset = minimize(&spec.reset_on, &spec.reset_dc);
                total += set.literal_count() + reset.literal_count() + 2;
            }
            total
        }
        Err(_) => usize::MAX / 2,
    }
}

/// Number of *output* transitions directly triggered by the state
/// signal's transitions (the timing-aware "keep x off the critical path"
/// metric).
fn critical_penalty(stg: &Stg, name: &str) -> usize {
    let Some(x) = stg.signal_by_name(name) else {
        return 0;
    };
    let net = stg.net();
    let mut count = 0;
    for t in stg.transitions_of(x) {
        for arc in net.postset(t) {
            for &consumer in net.consumers(arc.place) {
                if let TransitionLabel::Event(ev) = stg.label(consumer) {
                    if stg.signal_kind(ev.signal) == SignalKind::Output {
                        count += 1;
                    }
                }
            }
        }
    }
    count
}

#[cfg(test)]
mod tests {
    use super::*;
    use rt_stg::{explore, models};

    /// The explicit-path graph of a resolution (every test below that
    /// uses it runs below the symbolic threshold).
    fn graph(res: &CscResolution) -> &StateGraph {
        res.sg.as_ref().expect("explicit path carries its graph")
    }

    #[test]
    fn csc_free_spec_passes_through() {
        let stg = models::handshake_stg();
        let res = resolve_csc(&stg).unwrap();
        assert!(res.inserted.is_empty());
        assert_eq!(graph(&res).state_count(), 4);
    }

    #[test]
    fn fifo_conflicts_are_resolved_by_insertion() {
        let stg = models::fifo_stg();
        let res = resolve_csc(&stg).unwrap();
        assert!(!res.inserted.is_empty(), "fifo needs a state signal");
        assert!(graph(&res).csc_conflicts().is_empty());
        assert!(graph(&res).is_strongly_connected());
        // The new signal is internal.
        let x = res.stg.signal_by_name(&res.inserted[0]).unwrap();
        assert_eq!(res.stg.signal_kind(x), SignalKind::Internal);
    }

    #[test]
    fn insertion_preserves_interface_signals() {
        let stg = models::fifo_stg();
        let res = resolve_csc(&stg).unwrap();
        for name in ["li", "lo", "ro", "ri"] {
            let original = stg.signal_by_name(name).unwrap();
            let rewritten = res.stg.signal_by_name(name).unwrap();
            assert_eq!(
                stg.signal_kind(original),
                res.stg.signal_kind(rewritten),
                "{name} kind preserved"
            );
        }
    }

    #[test]
    fn manual_insertion_roundtrip() {
        let stg = models::handshake_stg();
        let net = stg.net();
        // Splice x+ into the first place and x- into the second.
        let places: Vec<_> = net.places().collect();
        let rewritten = insert_state_signal(&stg, "x", places[0], places[1]);
        assert_eq!(rewritten.signal_count(), stg.signal_count() + 1);
        // The rewrite may or may not be consistent; exploration decides.
        let _ = explore(&rewritten);
    }

    #[test]
    fn both_engine_backends_produce_identical_resolutions() {
        let options = CscOptions::default();
        for (name, stg) in [
            ("fifo", models::fifo_stg()),
            (
                "vme_read",
                rt_stg::corpus::parse(rt_stg::corpus::VME_READ_G).unwrap(),
            ),
            ("handshake", models::handshake_stg()),
        ] {
            let mut explicit = ReachEngine::explicit();
            let mut symbolic = ReachEngine::symbolic();
            let a = resolve_csc_engine(&stg, &options, &mut explicit)
                .unwrap_or_else(|e| panic!("{name} explicit: {e}"));
            let b = resolve_csc_engine(&stg, &options, &mut symbolic)
                .unwrap_or_else(|e| panic!("{name} symbolic: {e}"));
            assert_eq!(a.inserted, b.inserted, "{name}");
            assert_eq!(a.cost, b.cost, "{name}");
            let (ga, gb) = (graph(&a), graph(&b));
            assert_eq!(ga.state_count(), gb.state_count(), "{name}");
            assert_eq!(
                ga.states().map(|s| ga.code(s)).collect::<Vec<_>>(),
                gb.states().map(|s| gb.code(s)).collect::<Vec<_>>(),
                "{name}: identical coded graphs"
            );
        }
    }

    #[test]
    fn shared_symbolic_engine_audits_and_reuses_across_resolutions() {
        // One engine across two resolutions: manager survives, audit
        // passes, and at least one symbolic call hit the warm manager.
        let mut engine = ReachEngine::symbolic();
        let first = resolve_csc_engine(&models::fifo_stg(), &CscOptions::default(), &mut engine)
            .expect("fifo resolves");
        assert!(!first.inserted.is_empty());
        let nodes_after_first = engine.manager_nodes();
        assert!(nodes_after_first > 2, "audit ran symbolically");
        let second = resolve_csc_engine(&models::fifo_stg(), &CscOptions::default(), &mut engine)
            .expect("fifo resolves again");
        assert_eq!(first.inserted, second.inserted);
        assert_eq!(first.cost, second.cost);
        assert!(
            engine.stats().manager_reuses >= 1,
            "second audit reused the manager"
        );
        assert_eq!(
            engine.manager_nodes(),
            nodes_after_first,
            "identical net re-audited out of cache: no new nodes"
        );
    }

    #[test]
    fn candidate_pool_width_does_not_change_the_resolution() {
        for (name, stg) in [
            ("fifo", models::fifo_stg()),
            (
                "vme_read",
                rt_stg::corpus::parse(rt_stg::corpus::VME_READ_G).unwrap(),
            ),
        ] {
            let serial_options = CscOptions {
                threads: 1,
                ..CscOptions::default()
            };
            let mut serial_engine = ReachEngine::explicit();
            let serial = resolve_csc_engine(&stg, &serial_options, &mut serial_engine)
                .unwrap_or_else(|e| panic!("{name} serial: {e}"));
            for threads in [2usize, 8] {
                let options = CscOptions {
                    threads,
                    ..CscOptions::default()
                };
                let mut engine = ReachEngine::explicit();
                let parallel = resolve_csc_engine(&stg, &options, &mut engine)
                    .unwrap_or_else(|e| panic!("{name} x{threads}: {e}"));
                assert_eq!(parallel.inserted, serial.inserted, "{name} x{threads}");
                assert_eq!(parallel.cost, serial.cost, "{name} x{threads}");
                let (gp, gs) = (graph(&parallel), graph(&serial));
                assert_eq!(
                    gp.states().map(|s| gp.code(s)).collect::<Vec<_>>(),
                    gs.states().map(|s| gs.code(s)).collect::<Vec<_>>(),
                    "{name} x{threads}: identical coded graphs"
                );
                assert_eq!(
                    engine.stats().graph_builds,
                    serial_engine.stats().graph_builds,
                    "{name} x{threads}: absorbed worker stats match serial accounting"
                );
            }
        }
    }

    #[test]
    fn timing_aware_penalty_counts_output_triggers() {
        // In fifo_stg_csc, x+ directly triggers lo+ (an output).
        let stg = models::fifo_stg_csc();
        assert!(critical_penalty(&stg, "x") >= 1);
        assert_eq!(critical_penalty(&stg, "nonexistent"), 0);
    }
}
