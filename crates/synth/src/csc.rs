//! Complete-state-coding resolution by state-signal insertion.
//!
//! The paper's FIFO specification (Figure 3) has CSC conflicts; `petrify`
//! resolves them by inserting the state signal `x` (Figures 4–5) using
//! *timing-aware* encoding. This module reproduces the mechanism: it
//! searches over pairs of simple places of the STG, inserting `x+` on one
//! and `x-` on the other, re-exploring, and keeping the valid insertion
//! with the cheapest logic. The cost function can be biased to keep the
//! state signal off the critical path (the paper's "timing-aware state
//! encoding"): insertions whose state-signal transitions trigger output
//! events are penalized.
//!
//! All re-exploration funnels through one [`ReachEngine`]
//! ([`resolve_csc_engine`]): the candidate search is the hottest
//! repeated-reachability loop in the pipeline, and the engine is the
//! seam that lets it run over either backend. On the symbolic backend
//! the accepted resolution is additionally **audited** against the
//! engine's persistent-manager symbolic marking count
//! ([`SynthError::BackendMismatch`] on divergence), so the two
//! analysers continuously cross-check each other in production use.

use rt_boolean::minimize;
use rt_stg::engine::ReachEngine;
use rt_stg::par::{effective_threads, parallel_argmin};
use rt_stg::petri::PlaceId;
use rt_stg::stg::TransitionLabel;
use rt_stg::{SignalKind, StateGraph, Stg, TransitionId};

use crate::error::SynthError;
use crate::regions::{derive_functions, LocalDontCares};

/// Outcome of CSC resolution.
#[derive(Debug, Clone)]
pub struct CscResolution {
    /// The (possibly rewritten) STG, CSC-free.
    pub stg: Stg,
    /// Its state graph.
    pub sg: StateGraph,
    /// Names of inserted state signals (empty when none were needed).
    pub inserted: Vec<String>,
    /// Cost of the chosen encoding (minimized literal count).
    pub cost: usize,
}

/// Options for [`resolve_csc`].
#[derive(Debug, Clone, Copy)]
pub struct CscOptions {
    /// Maximum number of state signals to insert.
    pub max_signals: usize,
    /// Penalty added per output event directly triggered by a state
    /// signal transition (the timing-aware bias; 0 disables it).
    pub critical_path_penalty: usize,
    /// Worker-pool width for the candidate search (`0`, the default,
    /// resolves to one worker per available core; `1` runs serially).
    /// Each worker evaluates whole candidate insertions on a private
    /// explicit [`ReachEngine`], and the deterministic `(cost, index)`
    /// reduction of [`rt_stg::par::parallel_argmin`] guarantees the
    /// winner is identical at every width.
    pub threads: usize,
}

impl Default for CscOptions {
    fn default() -> Self {
        CscOptions {
            max_signals: 3,
            critical_path_penalty: 4,
            threads: 0,
        }
    }
}

/// Resolves CSC conflicts of `stg` by inserting up to
/// `options.max_signals` state signals.
///
/// # Errors
///
/// * [`SynthError::CscUnresolvable`] when no insertion sequence works;
/// * [`SynthError::Stg`] when the input STG itself fails exploration.
pub fn resolve_csc(stg: &Stg) -> Result<CscResolution, SynthError> {
    resolve_csc_with(stg, &CscOptions::default())
}

/// [`resolve_csc`] with explicit options, run on a throwaway
/// explicit-backend engine.
pub fn resolve_csc_with(stg: &Stg, options: &CscOptions) -> Result<CscResolution, SynthError> {
    resolve_csc_engine(stg, options, &mut ReachEngine::explicit())
}

/// [`resolve_csc_with`] through a caller-owned [`ReachEngine`].
///
/// Every candidate re-exploration of the search goes through `engine`,
/// so a shared engine accumulates its statistics (and, on the symbolic
/// backend, its warm BDD manager) across the whole resolution — and
/// across *multiple* resolutions when the caller keeps the engine
/// alive. The accepted result is backend-independent: the candidate
/// ranking uses only the explicitly built state graphs. On
/// [`rt_stg::ReachBackend::Symbolic`] the final resolution is audited
/// against the symbolic marking count.
///
/// # Errors
///
/// [`resolve_csc_with`]'s errors, plus [`SynthError::BackendMismatch`]
/// if the symbolic audit disagrees with the explicit graph.
pub fn resolve_csc_engine(
    stg: &Stg,
    options: &CscOptions,
    engine: &mut ReachEngine,
) -> Result<CscResolution, SynthError> {
    let sg = engine.state_graph(stg)?;
    if sg.csc_conflicts().is_empty() {
        let cost = encoding_cost(&sg, 0);
        let resolution = CscResolution {
            stg: stg.clone(),
            sg,
            inserted: Vec::new(),
            cost,
        };
        audit_resolution(&resolution, engine)?;
        return Ok(resolution);
    }
    let mut attempts = 0;
    let mut current = stg.clone();
    let mut before = sg.csc_conflicts().len();
    let mut inserted = Vec::new();
    for round in 0..options.max_signals {
        let name = format!("csc{round}");
        match best_insertion(&current, &name, options, before, engine, &mut attempts) {
            Some((next_stg, next_sg, cost)) => {
                inserted.push(name);
                if next_sg.csc_conflicts().is_empty() {
                    let resolution = CscResolution {
                        stg: next_stg,
                        sg: next_sg,
                        inserted,
                        cost,
                    };
                    audit_resolution(&resolution, engine)?;
                    return Ok(resolution);
                }
                before = next_sg.csc_conflicts().len();
                current = next_stg;
            }
            None => break,
        }
    }
    Err(SynthError::CscUnresolvable { attempts })
}

/// Symbolic-backend audit: the resolved STG's explicit state count must
/// match the persistent manager's symbolic marking count.
fn audit_resolution(
    resolution: &CscResolution,
    engine: &mut ReachEngine,
) -> Result<(), SynthError> {
    crate::regions::audit_against_symbolic(engine, &resolution.stg, &resolution.sg)
}

/// One candidate insertion point of the search, cheap to enumerate up
/// front so the worker pool can materialize and evaluate them
/// independently.
#[derive(Debug, Clone, Copy)]
enum InsertionSpec {
    /// Splice `x+`/`x-` into a pair of simple places.
    Place {
        plus: PlaceId,
        minus: PlaceId,
        token_after: bool,
    },
    /// Insert `x+`/`x-` after whole transitions.
    Trans {
        plus: TransitionId,
        minus: TransitionId,
    },
}

/// Enumerates every candidate insertion in the canonical (serial
/// search) order. The pool's deterministic reduction ties winners to
/// this order, so it must stay stable.
fn insertion_specs(stg: &Stg) -> Vec<InsertionSpec> {
    let places = simple_places(stg);
    let mut specs = Vec::new();
    for &plus in &places {
        for &minus in &places {
            if plus == minus {
                continue;
            }
            for token_after in [false, true] {
                specs.push(InsertionSpec::Place {
                    plus,
                    minus,
                    token_after,
                });
            }
        }
    }
    let transitions: Vec<_> = stg.net().transitions().collect();
    for &plus in &transitions {
        for &minus in &transitions {
            if plus == minus {
                continue;
            }
            specs.push(InsertionSpec::Trans { plus, minus });
        }
    }
    specs
}

/// Tries every candidate insertion point on the worker pool; returns
/// the best valid insertion as `(stg, sg, cost)`. `before` is the
/// conflict count of `stg` itself (already computed by the caller — no
/// re-exploration).
///
/// Every worker owns a private explicit [`ReachEngine`] (persistent
/// symbolic managers are not shared across threads; candidate ranking
/// is purely explicit anyway — see [`resolve_csc_engine`]), and the
/// workers' usage counters are folded back into `engine` afterwards,
/// so a caller watching [`ReachEngine::stats`] sees the same
/// `graph_builds` totals as the historical serial loop. The winner is
/// the `(cost, index)` minimum over the canonical candidate order —
/// bit-identical to the serial "first strictly better candidate wins"
/// scan at every pool width.
fn best_insertion(
    stg: &Stg,
    name: &str,
    options: &CscOptions,
    before: usize,
    engine: &mut ReachEngine,
    attempts: &mut usize,
) -> Option<(Stg, StateGraph, usize)> {
    let specs = insertion_specs(stg);
    *attempts += specs.len();
    let pool = effective_threads(options.threads);
    let mut worker_options = engine.options().clone();
    if pool > 1 {
        // Candidate-level parallelism replaces BFS-level sharding for
        // the search: candidate nets are small, and nesting the two
        // would oversubscribe the machine.
        worker_options.threads = 1;
    }

    let evaluate = |worker: &mut ReachEngine, index: usize| {
        let candidate = match specs[index] {
            InsertionSpec::Place {
                plus,
                minus,
                token_after,
            } => insert_state_signal_with(stg, name, plus, minus, token_after),
            InsertionSpec::Trans { plus, minus } => {
                insert_after_transitions(stg, name, plus, minus)
            }
        };
        let Ok(sg) = worker.state_graph(&candidate) else {
            return None;
        };
        if !sg.is_strongly_connected() || !sg.deadlock_states().is_empty() {
            return None;
        }
        let after = sg.csc_conflicts().len();
        if after >= before {
            return None; // insertion must strictly help
        }
        let penalty = critical_penalty(&candidate, name) * options.critical_path_penalty;
        let cost = if after == 0 {
            encoding_cost(&sg, penalty)
        } else {
            // Not yet CSC-free: rank by remaining conflicts.
            1_000 + after * 100 + penalty
        };
        Some((cost, (candidate, sg)))
    };

    let (best, workers) = parallel_argmin(
        specs.len(),
        options.threads,
        || ReachEngine::with_options(engine.backend(), worker_options.clone()),
        evaluate,
    );
    for worker in &workers {
        engine.absorb_stats(worker.stats());
    }
    best.map(|(_, cost, (candidate, sg))| (candidate, sg, cost))
}

/// Simple places: exactly one producer and one consumer — safe insertion
/// points for state-signal splicing.
pub fn simple_places(stg: &Stg) -> Vec<PlaceId> {
    let net = stg.net();
    net.places()
        .filter(|&p| net.producers(p).len() == 1 && net.consumers(p).len() == 1)
        .collect()
}

/// Rebuilds `stg` with a fresh internal signal whose rising transition is
/// spliced into `place_plus` and falling transition into `place_minus`.
/// A token on a spliced place rests *before* the new transition.
pub fn insert_state_signal(
    stg: &Stg,
    name: &str,
    place_plus: PlaceId,
    place_minus: PlaceId,
) -> Stg {
    insert_state_signal_with(stg, name, place_plus, place_minus, false)
}

/// Like [`insert_state_signal`], but `token_after` chooses whether a
/// token on a spliced marked place rests before (`false`) or after
/// (`true`) the new transition — the two placements give different
/// initial values and firing orders, and the search tries both.
pub fn insert_state_signal_with(
    stg: &Stg,
    name: &str,
    place_plus: PlaceId,
    place_minus: PlaceId,
    token_after: bool,
) -> Stg {
    let net = stg.net();
    let mut out = Stg::new(format!("{}_{}", stg.name(), name));
    // Copy the signal table and add the new internal signal.
    for signal in stg.signals() {
        out.add_signal(stg.signal_name(signal), stg.signal_kind(signal))
            .expect("copied signals are unique");
    }
    let x = out
        .add_signal(name, SignalKind::Internal)
        .expect("fresh state-signal name");
    // Copy transitions in order (ids are preserved).
    for t in net.transitions() {
        match stg.label(t) {
            TransitionLabel::Event(ev) => {
                out.transition(ev);
            }
            TransitionLabel::Silent => {
                out.silent(net.transition_name(t));
            }
        }
    }
    let x_plus = out.transition_for(x, rt_stg::Edge::Rise);
    let x_minus = out.transition_for(x, rt_stg::Edge::Fall);
    // Copy places, splitting the two chosen ones.
    let marking = stg.initial_marking();
    for p in net.places() {
        let tokens = marking.tokens(p);
        if (p == place_plus || p == place_minus) && !net.producers(p).is_empty() {
            let splice = if p == place_plus { x_plus } else { x_minus };
            let producer = net.producers(p)[0];
            let consumer = net.consumers(p)[0];
            let p1 = out.add_place(format!("{}_in", net.place_name(p)));
            let p2 = out.add_place(format!("{}_out", net.place_name(p)));
            out.arc_to_place(producer, p1);
            out.arc_from_place(p1, splice);
            out.arc_to_place(splice, p2);
            out.arc_from_place(p2, consumer);
            if token_after {
                out.set_tokens(p2, tokens);
            } else {
                out.set_tokens(p1, tokens);
            }
        } else {
            let copy = out.add_place(net.place_name(p));
            for &producer in net.producers(p) {
                out.arc_to_place(producer, copy);
            }
            for &consumer in net.consumers(p) {
                out.arc_from_place(copy, consumer);
            }
            out.set_tokens(copy, tokens);
        }
    }
    out
}

/// Rebuilds `stg` with a fresh internal signal inserted *after whole
/// transitions*: `x+` fires right after `after_plus` (taking over its
/// entire postset) and `x-` right after `after_minus`. Often succeeds
/// where single-place splicing cannot, because the new signal serializes
/// against every successor at once.
pub fn insert_after_transitions(
    stg: &Stg,
    name: &str,
    after_plus: rt_stg::TransitionId,
    after_minus: rt_stg::TransitionId,
) -> Stg {
    let net = stg.net();
    let mut out = Stg::new(format!("{}_{}", stg.name(), name));
    for signal in stg.signals() {
        out.add_signal(stg.signal_name(signal), stg.signal_kind(signal))
            .expect("copied signals are unique");
    }
    let x = out
        .add_signal(name, SignalKind::Internal)
        .expect("fresh state-signal name");
    for tr in net.transitions() {
        match stg.label(tr) {
            TransitionLabel::Event(ev) => {
                out.transition(ev);
            }
            TransitionLabel::Silent => {
                out.silent(net.transition_name(tr));
            }
        }
    }
    let x_plus = out.transition_for(x, rt_stg::Edge::Rise);
    let x_minus = out.transition_for(x, rt_stg::Edge::Fall);
    // Chain each spliced transition to its new successor.
    let chain = |out: &mut Stg, from: rt_stg::TransitionId, to: rt_stg::TransitionId| {
        let p = out.add_place(format!("splice_{}", out.net().place_count()));
        out.arc_to_place(from, p);
        out.arc_from_place(p, to);
    };
    chain(&mut out, after_plus, x_plus);
    chain(&mut out, after_minus, x_minus);
    let marking = stg.initial_marking();
    for p in net.places() {
        let copy = out.add_place(net.place_name(p));
        for &producer in net.producers(p) {
            // Arcs formerly produced by the spliced transitions now come
            // from the new signal's transitions.
            let source = if producer == after_plus {
                x_plus
            } else if producer == after_minus {
                x_minus
            } else {
                producer
            };
            out.arc_to_place(source, copy);
        }
        for &consumer in net.consumers(p) {
            out.arc_from_place(copy, consumer);
        }
        out.set_tokens(copy, marking.tokens(p));
    }
    out
}

/// Minimized literal count of every implemented signal — the logic cost
/// of an encoding.
fn encoding_cost(sg: &StateGraph, penalty: usize) -> usize {
    match derive_functions(sg, &LocalDontCares::none()) {
        Ok(funcs) => {
            let mut total = penalty;
            for spec in &funcs.specs {
                let set = minimize(&spec.set_on, &spec.set_dc);
                let reset = minimize(&spec.reset_on, &spec.reset_dc);
                total += set.literal_count() + reset.literal_count() + 2;
            }
            total
        }
        Err(_) => usize::MAX / 2,
    }
}

/// Number of *output* transitions directly triggered by the state
/// signal's transitions (the timing-aware "keep x off the critical path"
/// metric).
fn critical_penalty(stg: &Stg, name: &str) -> usize {
    let Some(x) = stg.signal_by_name(name) else {
        return 0;
    };
    let net = stg.net();
    let mut count = 0;
    for t in stg.transitions_of(x) {
        for arc in net.postset(t) {
            for &consumer in net.consumers(arc.place) {
                if let TransitionLabel::Event(ev) = stg.label(consumer) {
                    if stg.signal_kind(ev.signal) == SignalKind::Output {
                        count += 1;
                    }
                }
            }
        }
    }
    count
}

#[cfg(test)]
mod tests {
    use super::*;
    use rt_stg::{explore, models};

    #[test]
    fn csc_free_spec_passes_through() {
        let stg = models::handshake_stg();
        let res = resolve_csc(&stg).unwrap();
        assert!(res.inserted.is_empty());
        assert_eq!(res.sg.state_count(), 4);
    }

    #[test]
    fn fifo_conflicts_are_resolved_by_insertion() {
        let stg = models::fifo_stg();
        let res = resolve_csc(&stg).unwrap();
        assert!(!res.inserted.is_empty(), "fifo needs a state signal");
        assert!(res.sg.csc_conflicts().is_empty());
        assert!(res.sg.is_strongly_connected());
        // The new signal is internal.
        let x = res.stg.signal_by_name(&res.inserted[0]).unwrap();
        assert_eq!(res.stg.signal_kind(x), SignalKind::Internal);
    }

    #[test]
    fn insertion_preserves_interface_signals() {
        let stg = models::fifo_stg();
        let res = resolve_csc(&stg).unwrap();
        for name in ["li", "lo", "ro", "ri"] {
            let original = stg.signal_by_name(name).unwrap();
            let rewritten = res.stg.signal_by_name(name).unwrap();
            assert_eq!(
                stg.signal_kind(original),
                res.stg.signal_kind(rewritten),
                "{name} kind preserved"
            );
        }
    }

    #[test]
    fn manual_insertion_roundtrip() {
        let stg = models::handshake_stg();
        let net = stg.net();
        // Splice x+ into the first place and x- into the second.
        let places: Vec<_> = net.places().collect();
        let rewritten = insert_state_signal(&stg, "x", places[0], places[1]);
        assert_eq!(rewritten.signal_count(), stg.signal_count() + 1);
        // The rewrite may or may not be consistent; exploration decides.
        let _ = explore(&rewritten);
    }

    #[test]
    fn both_engine_backends_produce_identical_resolutions() {
        let options = CscOptions::default();
        for (name, stg) in [
            ("fifo", models::fifo_stg()),
            (
                "vme_read",
                rt_stg::corpus::parse(rt_stg::corpus::VME_READ_G).unwrap(),
            ),
            ("handshake", models::handshake_stg()),
        ] {
            let mut explicit = ReachEngine::explicit();
            let mut symbolic = ReachEngine::symbolic();
            let a = resolve_csc_engine(&stg, &options, &mut explicit)
                .unwrap_or_else(|e| panic!("{name} explicit: {e}"));
            let b = resolve_csc_engine(&stg, &options, &mut symbolic)
                .unwrap_or_else(|e| panic!("{name} symbolic: {e}"));
            assert_eq!(a.inserted, b.inserted, "{name}");
            assert_eq!(a.cost, b.cost, "{name}");
            assert_eq!(a.sg.state_count(), b.sg.state_count(), "{name}");
            assert_eq!(
                a.sg.states().map(|s| a.sg.code(s)).collect::<Vec<_>>(),
                b.sg.states().map(|s| b.sg.code(s)).collect::<Vec<_>>(),
                "{name}: identical coded graphs"
            );
        }
    }

    #[test]
    fn shared_symbolic_engine_audits_and_reuses_across_resolutions() {
        // One engine across two resolutions: manager survives, audit
        // passes, and at least one symbolic call hit the warm manager.
        let mut engine = ReachEngine::symbolic();
        let first = resolve_csc_engine(&models::fifo_stg(), &CscOptions::default(), &mut engine)
            .expect("fifo resolves");
        assert!(!first.inserted.is_empty());
        let nodes_after_first = engine.manager_nodes();
        assert!(nodes_after_first > 2, "audit ran symbolically");
        let second = resolve_csc_engine(&models::fifo_stg(), &CscOptions::default(), &mut engine)
            .expect("fifo resolves again");
        assert_eq!(first.inserted, second.inserted);
        assert_eq!(first.cost, second.cost);
        assert!(
            engine.stats().manager_reuses >= 1,
            "second audit reused the manager"
        );
        assert_eq!(
            engine.manager_nodes(),
            nodes_after_first,
            "identical net re-audited out of cache: no new nodes"
        );
    }

    #[test]
    fn candidate_pool_width_does_not_change_the_resolution() {
        for (name, stg) in [
            ("fifo", models::fifo_stg()),
            (
                "vme_read",
                rt_stg::corpus::parse(rt_stg::corpus::VME_READ_G).unwrap(),
            ),
        ] {
            let serial_options = CscOptions {
                threads: 1,
                ..CscOptions::default()
            };
            let mut serial_engine = ReachEngine::explicit();
            let serial = resolve_csc_engine(&stg, &serial_options, &mut serial_engine)
                .unwrap_or_else(|e| panic!("{name} serial: {e}"));
            for threads in [2usize, 8] {
                let options = CscOptions {
                    threads,
                    ..CscOptions::default()
                };
                let mut engine = ReachEngine::explicit();
                let parallel = resolve_csc_engine(&stg, &options, &mut engine)
                    .unwrap_or_else(|e| panic!("{name} x{threads}: {e}"));
                assert_eq!(parallel.inserted, serial.inserted, "{name} x{threads}");
                assert_eq!(parallel.cost, serial.cost, "{name} x{threads}");
                assert_eq!(
                    parallel
                        .sg
                        .states()
                        .map(|s| parallel.sg.code(s))
                        .collect::<Vec<_>>(),
                    serial
                        .sg
                        .states()
                        .map(|s| serial.sg.code(s))
                        .collect::<Vec<_>>(),
                    "{name} x{threads}: identical coded graphs"
                );
                assert_eq!(
                    engine.stats().graph_builds,
                    serial_engine.stats().graph_builds,
                    "{name} x{threads}: absorbed worker stats match serial accounting"
                );
            }
        }
    }

    #[test]
    fn timing_aware_penalty_counts_output_triggers() {
        // In fifo_stg_csc, x+ directly triggers lo+ (an output).
        let stg = models::fifo_stg_csc();
        assert!(critical_penalty(&stg, "x") >= 1);
        assert_eq!(critical_penalty(&stg, "nonexistent"), 0);
    }
}
