//! Error type for the synthesis crate.

use std::error::Error;
use std::fmt;

use rt_stg::{SignalId, StgError};

/// Errors produced during logic synthesis.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SynthError {
    /// The state graph still has CSC conflicts; the next-state function of
    /// the named signal is ill-defined.
    CscConflict {
        /// The ambiguous signal.
        signal: String,
    },
    /// CSC resolution gave up after the configured number of insertions.
    CscUnresolvable {
        /// Insertions attempted.
        attempts: usize,
    },
    /// A signal's derived set and reset covers overlap on a reachable
    /// state — the generalized C-element would fight.
    OverlappingCovers {
        /// The offending signal.
        signal: String,
        /// Code of a state where both covers are on.
        state_code: u64,
    },
    /// The specification has no implemented (output/internal) signals.
    NothingToImplement,
    /// The reachability engine's explicit and symbolic backends
    /// disagreed on the reachable-marking count of the same STG — one
    /// of the analysers is wrong, so the synthesis result cannot be
    /// trusted.
    BackendMismatch {
        /// States in the explicitly built graph.
        explicit: u64,
        /// Markings counted symbolically.
        symbolic: u64,
    },
    /// The explicit and symbolic CSC conflict *detectors* disagreed on
    /// the conflict count of the same specification — one of them is
    /// wrong, so the accepted encoding cannot be trusted.
    DetectorMismatch {
        /// Conflicts found on the explicitly coded state graph.
        explicit: u64,
        /// Conflicts counted by the symbolic pair-space relation.
        symbolic: u64,
    },
    /// An underlying STG analysis failed.
    Stg(StgError),
    /// The signal id is out of range for this state graph.
    UnknownSignal(SignalId),
}

impl fmt::Display for SynthError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SynthError::CscConflict { signal } => {
                write!(f, "csc conflict on signal `{signal}`")
            }
            SynthError::CscUnresolvable { attempts } => {
                write!(f, "csc unresolvable after {attempts} insertion attempts")
            }
            SynthError::OverlappingCovers { signal, state_code } => write!(
                f,
                "set/reset covers of `{signal}` overlap in state {state_code:b}"
            ),
            SynthError::NothingToImplement => {
                write!(f, "specification has no output or internal signals")
            }
            SynthError::BackendMismatch { explicit, symbolic } => write!(
                f,
                "reachability backends disagree: {explicit} explicit states vs \
                 {symbolic} symbolic markings"
            ),
            SynthError::DetectorMismatch { explicit, symbolic } => write!(
                f,
                "csc detectors disagree: {explicit} conflicts on the explicit \
                 graph vs {symbolic} symbolic"
            ),
            SynthError::Stg(err) => write!(f, "stg analysis failed: {err}"),
            SynthError::UnknownSignal(id) => write!(f, "unknown signal {id}"),
        }
    }
}

impl Error for SynthError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            SynthError::Stg(err) => Some(err),
            _ => None,
        }
    }
}

impl From<StgError> for SynthError {
    fn from(err: StgError) -> Self {
        SynthError::Stg(err)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        let err = SynthError::CscConflict { signal: "x".into() };
        assert_eq!(err.to_string(), "csc conflict on signal `x`");
        let err = SynthError::OverlappingCovers {
            signal: "ro".into(),
            state_code: 5,
        };
        assert!(err.to_string().contains("101"));
    }

    #[test]
    fn stg_errors_convert() {
        let err: SynthError = StgError::StateLimitExceeded(7).into();
        assert!(matches!(err, SynthError::Stg(_)));
        assert!(Error::source(&err).is_some());
    }
}
