//! # rt-synth — speed-independent logic synthesis
//!
//! Turns a [`rt_stg::StateGraph`] into a gate-level implementation:
//!
//! 1. [`regions`] — excitation/quiescent regions and set/reset next-state
//!    functions with don't-care sets;
//! 2. [`csc`] — complete-state-coding resolution by state-signal
//!    insertion (search over arc positions, as `petrify` does for the
//!    paper's FIFO in Figure 4/5);
//! 3. [`map`] — cover minimization (espresso, `rt-boolean`) and mapping
//!    onto generalized C-elements with shared input inverters
//!    (`rt-netlist`).
//!
//! The relative-timing crate (`rt-core`) reuses every stage on *lazy*
//! state graphs, where timing assumptions have pruned states and enlarged
//! the don't-care sets (Section 3 of the paper).
//!
//! Reachability runs through one [`rt_stg::ReachEngine`]: CSC
//! resolution's candidate search ([`csc::resolve_csc_engine`]) and the
//! STG-level function derivation ([`regions::derive_functions_for`])
//! take a caller-owned engine, so repeated explorations share state
//! (and, on the symbolic backend, a warm persistent BDD manager that
//! audits every accepted graph).
//!
//! ## Example: the C-element synthesizes to a C-element
//!
//! ```
//! use rt_stg::models;
//! use rt_synth::synthesize;
//!
//! # fn main() -> Result<(), rt_synth::SynthError> {
//! let sg = rt_stg::explore(&models::celement_stg()).map_err(rt_synth::SynthError::Stg)?;
//! let result = synthesize(&sg, "celement")?;
//! assert_eq!(result.netlist.nets_of_kind(rt_netlist::NetKind::Output).len(), 1);
//! # Ok(())
//! # }
//! ```

pub mod csc;
pub mod error;
pub mod map;
pub mod regions;

pub use csc::{resolve_csc, resolve_csc_engine, resolve_csc_with, CscResolution};
pub use error::SynthError;
pub use map::{
    synthesize, synthesize_with_dc, synthesize_with_options, MapOptions, SynthesisResult,
};
pub use regions::{derive_functions_for, excitation_cover_for, SetResetSpec, SignalFunctions};
