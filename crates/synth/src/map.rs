//! Cover minimization and technology mapping onto generalized
//! C-elements.
//!
//! Every implemented signal becomes one [`rt_netlist::GateKind::Gc`]
//! whose set/reset stacks realize the minimized covers. Multi-cube covers
//! are built from AND/OR trees feeding the stack; complemented literals
//! share one inverter per signal. This is the "complex gate /
//! generalized-C" style the paper's Figure 4 circuit belongs to.

use std::collections::HashMap;

use rt_boolean::{minimize, Cover};
use rt_netlist::{GateKind, NetId, NetKind, Netlist};
use rt_stg::{SignalId, SignalKind, StateGraph};

use crate::error::SynthError;
use crate::regions::{derive_functions, LocalDontCares, SetResetSpec};

/// Result of synthesis: the netlist plus per-signal minimized covers.
#[derive(Debug, Clone)]
pub struct SynthesisResult {
    /// The mapped gate-level implementation.
    pub netlist: Netlist,
    /// Per implemented signal: `(signal, set cover, reset cover)`.
    pub equations: Vec<(SignalId, Cover, Cover)>,
    /// Total minimized literal count.
    pub literal_count: usize,
}

impl SynthesisResult {
    /// Pretty-prints the set/reset equations against the state-graph
    /// signal names.
    pub fn equations_text(&self, sg: &StateGraph) -> String {
        let names: Vec<&str> = sg.signals().map(|s| sg.signal_name(s)).collect();
        let mut out = String::new();
        for (signal, set, reset) in &self.equations {
            out.push_str(&format!(
                "{}: set = {} ; reset = {}\n",
                sg.signal_name(*signal),
                set.to_expression(&names),
                reset.to_expression(&names),
            ));
        }
        out
    }
}

/// Synthesizes a CSC-free state graph into a gC netlist.
///
/// # Errors
///
/// Propagates [`crate::regions::derive_functions`] failures and reports
/// [`SynthError::OverlappingCovers`] when the minimized set and reset of
/// some signal intersect on a reachable state.
pub fn synthesize(sg: &StateGraph, name: &str) -> Result<SynthesisResult, SynthError> {
    synthesize_with_dc(sg, name, &LocalDontCares::none())
}

/// [`synthesize`] with caller-provided local don't-cares (used by the
/// relative-timing flow for lazy signals).
pub fn synthesize_with_dc(
    sg: &StateGraph,
    name: &str,
    local_dc: &LocalDontCares,
) -> Result<SynthesisResult, SynthError> {
    synthesize_with_options(sg, name, local_dc, &MapOptions::default())
}

/// Technology-mapping options.
///
/// Real gate libraries bound the series-transistor stack height (deep
/// stacks are slow and leaky); `max_stack` makes the mapper decompose
/// any wider set/reset cube through an AND tree before it reaches the
/// gC — the "timing-aware logic decomposition and technology mapping"
/// step Section 6 calls for.
#[derive(Debug, Clone, Copy)]
pub struct MapOptions {
    /// Maximum literals placed directly in one gC stack (≥ 1).
    pub max_stack: usize,
}

impl Default for MapOptions {
    fn default() -> Self {
        MapOptions { max_stack: 4 }
    }
}

/// Full-control synthesis entry point.
///
/// # Errors
///
/// As [`synthesize`], plus nothing extra: decomposition cannot fail.
pub fn synthesize_with_options(
    sg: &StateGraph,
    name: &str,
    local_dc: &LocalDontCares,
    options: &MapOptions,
) -> Result<SynthesisResult, SynthError> {
    let funcs = derive_functions(sg, local_dc)?;
    let mut netlist = Netlist::new(name);
    let mut builder = Mapper::new(&mut netlist, sg, *options);
    let mut equations = Vec::new();
    let mut literal_count = 0;

    for spec in &funcs.specs {
        let set = minimize(&spec.set_on, &spec.set_dc);
        let reset = minimize(&spec.reset_on, &spec.reset_dc);
        check_no_overlap(sg, spec, &set, &reset)?;
        literal_count += set.literal_count() + reset.literal_count();
        builder.map_signal(spec.signal, &set, &reset);
        equations.push((spec.signal, set, reset));
    }
    builder.finish();
    Ok(SynthesisResult {
        netlist,
        equations,
        literal_count,
    })
}

/// The minimized covers must never both be on in a reachable state —
/// otherwise the gC set and reset stacks fight.
fn check_no_overlap(
    sg: &StateGraph,
    spec: &SetResetSpec,
    set: &Cover,
    reset: &Cover,
) -> Result<(), SynthError> {
    for state in sg.states() {
        let code = sg.code(state);
        if set.evaluate(code) && reset.evaluate(code) {
            return Err(SynthError::OverlappingCovers {
                signal: sg.signal_name(spec.signal).to_string(),
                state_code: code,
            });
        }
    }
    Ok(())
}

/// Incremental netlist builder shared across signals (inverters are
/// created once per complemented literal).
struct Mapper<'a> {
    netlist: &'a mut Netlist,
    sg: &'a StateGraph,
    signal_nets: Vec<NetId>,
    inverters: HashMap<usize, NetId>,
    aux: usize,
    options: MapOptions,
}

impl<'a> Mapper<'a> {
    fn new(netlist: &'a mut Netlist, sg: &'a StateGraph, options: MapOptions) -> Self {
        let mut signal_nets = Vec::new();
        for signal in sg.signals() {
            let kind = match sg.signal_kind(signal) {
                SignalKind::Input => NetKind::Input,
                SignalKind::Output => NetKind::Output,
                SignalKind::Internal => NetKind::Internal,
            };
            signal_nets.push(netlist.add_net(sg.signal_name(signal), kind));
        }
        Mapper {
            netlist,
            sg,
            signal_nets,
            inverters: HashMap::new(),
            aux: 0,
            options,
        }
    }

    /// Reduces a literal list to at most `max_stack` nets by folding the
    /// overflow through AND gates (balanced-ish: fold from the front).
    fn decompose_stack(&mut self, owner: &str, role: &str, mut nets: Vec<NetId>) -> Vec<NetId> {
        let max = self.options.max_stack.max(1);
        while nets.len() > max {
            let take = (nets.len() - max + 1).min(nets.len()).max(2);
            let group: Vec<NetId> = nets.drain(..take).collect();
            let folded = self
                .netlist
                .add_net(format!("{owner}_{role}_d{}", self.aux), NetKind::Internal);
            self.aux += 1;
            self.netlist.add_gate(
                format!("and_{owner}_{role}_d{}", self.aux),
                GateKind::And,
                group,
                folded,
            );
            nets.insert(0, folded);
        }
        nets
    }

    fn literal_net(&mut self, var: usize, positive: bool) -> NetId {
        if positive {
            return self.signal_nets[var];
        }
        if let Some(&net) = self.inverters.get(&var) {
            return net;
        }
        let name = format!("{}_b", self.sg.signal_name(rt_stg::SignalId(var as u32)));
        let net = self.netlist.add_net(name.clone(), NetKind::Internal);
        self.netlist.add_gate(
            format!("inv_{}", self.sg.signal_name(rt_stg::SignalId(var as u32))),
            GateKind::Inv,
            vec![self.signal_nets[var]],
            net,
        );
        self.inverters.insert(var, net);
        net
    }

    /// Reduces a cover to a single net (possibly via AND/OR trees) and
    /// returns the net plus how many stack inputs it represents when the
    /// cover is a single cube (so single-cube covers embed directly into
    /// the gC stack).
    fn cover_nets(&mut self, owner: &str, role: &str, cover: &Cover) -> Vec<NetId> {
        match cover.cubes() {
            [] => {
                // Constant-0 stack: tie low through a dedicated net.
                let net = self
                    .netlist
                    .add_net(format!("{owner}_{role}_zero"), NetKind::Internal);
                // A NOR of a signal and its complement is constant 0.
                let some_sig = self.signal_nets[0];
                let inv = self.literal_net(0, false);
                self.netlist.add_gate(
                    format!("tie0_{owner}_{role}"),
                    GateKind::Nor,
                    vec![some_sig, inv],
                    net,
                );
                vec![net]
            }
            [single] => single
                .literals()
                .map(|(var, positive)| self.literal_net(var, positive))
                .collect(),
            cubes => {
                // Per-cube AND (or direct literal), then one OR.
                let mut products = Vec::new();
                for cube in cubes {
                    let literals: Vec<NetId> = cube
                        .literals()
                        .map(|(var, positive)| self.literal_net(var, positive))
                        .collect();
                    if literals.len() == 1 {
                        products.push(literals[0]);
                    } else {
                        let net = self
                            .netlist
                            .add_net(format!("{owner}_{role}_p{}", self.aux), NetKind::Internal);
                        self.aux += 1;
                        self.netlist.add_gate(
                            format!("and_{owner}_{role}_{}", self.aux),
                            GateKind::And,
                            literals,
                            net,
                        );
                        products.push(net);
                    }
                }
                let or_net = self
                    .netlist
                    .add_net(format!("{owner}_{role}_or"), NetKind::Internal);
                self.netlist
                    .add_gate(format!("or_{owner}_{role}"), GateKind::Or, products, or_net);
                vec![or_net]
            }
        }
    }

    fn map_signal(&mut self, signal: SignalId, set: &Cover, reset: &Cover) {
        let owner = self.sg.signal_name(signal).to_string();
        let set_nets = self.cover_nets(&owner, "set", set);
        let set_nets = self.decompose_stack(&owner, "set", set_nets);
        let reset_nets = self.cover_nets(&owner, "reset", reset);
        let reset_nets = self.decompose_stack(&owner, "reset", reset_nets);
        let mut inputs = set_nets.clone();
        inputs.extend(reset_nets.iter().copied());
        self.netlist.add_gate(
            format!("gc_{owner}"),
            GateKind::Gc {
                set: set_nets.len() as u8,
                reset: reset_nets.len() as u8,
            },
            inputs,
            self.signal_nets[signal.index()],
        );
    }

    fn finish(self) {}
}

#[cfg(test)]
mod tests {
    use super::*;
    use rt_stg::{explore, models};

    #[test]
    fn celement_maps_to_single_gc() {
        let sg = explore(&models::celement_stg()).unwrap();
        let result = synthesize(&sg, "celem").unwrap();
        result.netlist.validate().unwrap();
        // set = a·b, reset = a̅·b̅: one gC plus two inverters.
        let gcs = result
            .netlist
            .gates()
            .filter(|&g| matches!(result.netlist.gate(g).kind, GateKind::Gc { .. }))
            .count();
        assert_eq!(gcs, 1);
        assert_eq!(result.literal_count, 4);
    }

    #[test]
    fn handshake_output_is_a_buffer_like_gc() {
        let sg = explore(&models::handshake_stg()).unwrap();
        let result = synthesize(&sg, "hs").unwrap();
        result.netlist.validate().unwrap();
        // b: set = a, reset = a̅ -> 2 literals.
        assert_eq!(result.literal_count, 2);
    }

    #[test]
    fn fifo_csc_synthesizes_three_state_holders() {
        let sg = explore(&models::fifo_stg_csc()).unwrap();
        let result = synthesize(&sg, "fifo").unwrap();
        result.netlist.validate().unwrap();
        let gcs = result
            .netlist
            .gates()
            .filter(|&g| matches!(result.netlist.gate(g).kind, GateKind::Gc { .. }))
            .count();
        assert_eq!(gcs, 3, "lo, ro, x");
        // The synthesized area lands in the Figure-4 class.
        let transistors = result.netlist.transistor_count();
        assert!(
            (30..=60).contains(&transistors),
            "got {transistors} transistors"
        );
    }

    #[test]
    fn equations_text_names_signals() {
        let sg = explore(&models::celement_stg()).unwrap();
        let result = synthesize(&sg, "celem").unwrap();
        let text = result.equations_text(&sg);
        assert!(text.contains("c: set = a·b"), "{text}");
    }

    #[test]
    fn unresolved_csc_is_an_error() {
        let sg = explore(&models::fifo_stg()).unwrap();
        assert!(matches!(
            synthesize(&sg, "fifo"),
            Err(SynthError::CscConflict { .. })
        ));
    }

    #[test]
    fn stack_limit_decomposes_wide_covers() {
        // Force a tiny stack bound: every multi-literal cube must be
        // folded through AND gates, and the result stays functional.
        let sg = explore(&models::fifo_stg_csc()).unwrap();
        let tight = synthesize_with_options(
            &sg,
            "fifo_tight",
            &crate::regions::LocalDontCares::none(),
            &MapOptions { max_stack: 1 },
        )
        .unwrap();
        tight.netlist.validate().unwrap();
        // Every gC stack now has exactly one input per side.
        for g in tight.netlist.gates() {
            if let GateKind::Gc { set, reset } = tight.netlist.gate(g).kind {
                assert!(set <= 1 && reset <= 1, "stack bound violated");
            }
        }
        // The decomposition costs area relative to the default mapping.
        let loose = synthesize(&sg, "fifo_loose").unwrap();
        assert!(tight.netlist.transistor_count() >= loose.netlist.transistor_count());
        // Same equations either way.
        assert_eq!(tight.literal_count, loose.literal_count);
    }

    #[test]
    fn default_stack_limit_is_transparent_for_the_paper_cells() {
        // The FIFO covers all fit in 4-high stacks: default options must
        // produce the same netlist cost as unlimited stacks.
        let sg = explore(&models::fifo_stg_csc()).unwrap();
        let default = synthesize(&sg, "fifo").unwrap();
        let unlimited = synthesize_with_options(
            &sg,
            "fifo_unlimited",
            &crate::regions::LocalDontCares::none(),
            &MapOptions { max_stack: 64 },
        )
        .unwrap();
        assert_eq!(
            default.netlist.transistor_count(),
            unlimited.netlist.transistor_count()
        );
    }

    #[test]
    fn end_to_end_resolution_plus_synthesis() {
        let res = crate::csc::resolve_csc(&models::fifo_stg()).unwrap();
        let sg = res.sg.as_ref().expect("explicit path carries its graph");
        let result = synthesize(sg, "fifo_auto").unwrap();
        result.netlist.validate().unwrap();
        assert!(result.literal_count > 0);
    }
}
