//! Excitation regions and set/reset next-state functions.
//!
//! For every implemented signal `a` the state graph is partitioned into
//! the excitation regions `ER(a+)`, `ER(a-)` and the quiescent regions
//! `QR(a=1)`, `QR(a=0)`. A generalized-C implementation needs:
//!
//! * a **set** function that is on throughout `ER(a+)`, off in `QR(a=0)`
//!   and `ER(a-)` (monotonic-cover rule: the set stack must not fight the
//!   reset stack), and free (don't-care) in `QR(a=1)` and in unreachable
//!   codes;
//! * a **reset** function that is on throughout `ER(a-)`, off in
//!   `QR(a=1)` and `ER(a+)`, free in `QR(a=0)` and unreachable codes.
//!
//! Relative timing enlarges the unreachable set — that is the entire
//! mechanism by which RT assumptions shrink logic (Section 3).

use std::collections::BTreeSet;

use rt_boolean::{Cover, Cube};
use rt_stg::engine::{ReachBackend, ReachEngine};
use rt_stg::{Edge, SignalEvent, SignalId, StateGraph, StateId, Stg};

use crate::error::SynthError;

/// The set/reset specification of one signal: on-sets and don't-care
/// sets as covers over the state-graph signals.
#[derive(Debug, Clone)]
pub struct SetResetSpec {
    /// The implemented signal.
    pub signal: SignalId,
    /// Set on-set (must be 1).
    pub set_on: Cover,
    /// Set don't-care set.
    pub set_dc: Cover,
    /// Reset on-set.
    pub reset_on: Cover,
    /// Reset don't-care set.
    pub reset_dc: Cover,
}

/// Next-state functions for every implemented signal of a state graph.
#[derive(Debug, Clone)]
pub struct SignalFunctions {
    /// Number of signal variables (the cover arity).
    pub vars: usize,
    /// Per-signal set/reset specifications.
    pub specs: Vec<SetResetSpec>,
}

/// Extra don't-care states injected by the caller (relative timing's lazy
/// signals): per signal, a set of states whose function value is freed.
#[derive(Debug, Clone, Default)]
pub struct LocalDontCares {
    entries: Vec<(SignalId, Vec<StateId>)>,
}

impl LocalDontCares {
    /// No local don't-cares.
    pub fn none() -> Self {
        LocalDontCares::default()
    }

    /// Frees the function of `signal` in `states`.
    pub fn add(&mut self, signal: SignalId, states: Vec<StateId>) {
        self.entries.push((signal, states));
    }

    fn states_for(&self, signal: SignalId) -> BTreeSet<StateId> {
        self.entries
            .iter()
            .filter(|(s, _)| *s == signal)
            .flat_map(|(_, states)| states.iter().copied())
            .collect()
    }
}

/// Derives set/reset functions for all implemented signals.
///
/// # Errors
///
/// Returns [`SynthError::CscConflict`] if two states share a code but
/// disagree on a signal's implied value (run [`crate::resolve_csc`]
/// first), and [`SynthError::NothingToImplement`] when there are no
/// outputs.
pub fn derive_functions(
    sg: &StateGraph,
    local_dc: &LocalDontCares,
) -> Result<SignalFunctions, SynthError> {
    let implemented = sg.implemented_signals();
    if implemented.is_empty() {
        return Err(SynthError::NothingToImplement);
    }
    if let Some(conflict) = sg.csc_conflicts().first() {
        return Err(SynthError::CscConflict {
            signal: sg.signal_name(conflict.signal).to_string(),
        });
    }
    let vars = sg.signal_count();
    // Unreachable codes are global don't-cares.
    let reachable: BTreeSet<u64> = sg.states().map(|s| sg.code(s)).collect();
    let unreachable_dc = unreachable_cover(vars, &reachable);

    let mut specs = Vec::new();
    for signal in implemented {
        let free = local_dc.states_for(signal);
        let mut set_on = Cover::empty(vars);
        let mut set_dc = unreachable_dc.clone();
        let mut reset_on = Cover::empty(vars);
        let mut reset_dc = unreachable_dc.clone();
        for state in sg.states() {
            let code = sg.code(state);
            let cube = Cube::minterm(vars, code);
            if free.contains(&state) {
                set_dc.push(cube);
                reset_dc.push(cube);
                continue;
            }
            match sg.excitation(state, signal) {
                Some(Edge::Rise) => set_on.push(cube),
                Some(Edge::Fall) => reset_on.push(cube),
                None => {
                    if sg.signal_value(state, signal) {
                        // QR(1): set free, reset must be off.
                        set_dc.push(cube);
                    } else {
                        // QR(0): reset free, set must be off.
                        reset_dc.push(cube);
                    }
                }
            }
        }
        specs.push(SetResetSpec {
            signal,
            set_on,
            set_dc,
            reset_on,
            reset_dc,
        });
    }
    Ok(SignalFunctions { vars, specs })
}

/// The excitation region of `event` as a cover of state codes.
pub fn excitation_cover(sg: &StateGraph, event: SignalEvent) -> Cover {
    let vars = sg.signal_count();
    let mut cover = Cover::empty(vars);
    for state in sg.excitation_region(event) {
        cover.push(Cube::minterm(vars, sg.code(state)));
    }
    cover
}

/// STG-level entry point: explores `stg` through `engine` and derives
/// the set/reset functions from the resulting graph. The reachable-set
/// query behind the global unreachable-code don't-cares thereby runs on
/// whichever backend the engine is configured with, and on
/// [`ReachBackend::Symbolic`] the graph is audited against the
/// persistent manager's marking count before any cover is derived.
///
/// # Errors
///
/// [`derive_functions`]'s errors, plus exploration failures and
/// [`SynthError::BackendMismatch`] from the symbolic audit.
pub fn derive_functions_for(
    engine: &mut ReachEngine,
    stg: &Stg,
    local_dc: &LocalDontCares,
) -> Result<SignalFunctions, SynthError> {
    let sg = audited_graph(engine, stg)?;
    derive_functions(&sg, local_dc)
}

/// STG-level twin of [`excitation_cover`]: explores through `engine`
/// (with the symbolic audit on that backend) and covers `event`'s
/// excitation region.
///
/// # Errors
///
/// Exploration failures and [`SynthError::BackendMismatch`].
pub fn excitation_cover_for(
    engine: &mut ReachEngine,
    stg: &Stg,
    event: SignalEvent,
) -> Result<Cover, SynthError> {
    let sg = audited_graph(engine, stg)?;
    Ok(excitation_cover(&sg, event))
}

/// Builds the state graph through the engine and, on the symbolic
/// backend, cross-checks its state count against the symbolic marking
/// count.
fn audited_graph(engine: &mut ReachEngine, stg: &Stg) -> Result<StateGraph, SynthError> {
    let sg = engine.state_graph(stg)?;
    audit_against_symbolic(engine, stg, &sg)?;
    Ok(sg)
}

/// The one symbolic-audit implementation shared by every engine-level
/// synthesis entry point (here and in [`crate::csc`]): on
/// [`ReachBackend::Symbolic`], `stg`'s symbolic marking count must
/// match the explicitly built graph's state count.
///
/// # Errors
///
/// [`SynthError::BackendMismatch`] on divergence; the symbolic query's
/// own errors.
pub(crate) fn audit_against_symbolic(
    engine: &mut ReachEngine,
    stg: &Stg,
    sg: &StateGraph,
) -> Result<(), SynthError> {
    if engine.backend() != ReachBackend::Symbolic {
        return Ok(());
    }
    let summary = engine.summary(stg)?;
    let explicit = sg.state_count() as u64;
    if summary.markings != explicit {
        return Err(SynthError::BackendMismatch {
            explicit,
            symbolic: summary.markings,
        });
    }
    Ok(())
}

/// The global don't-care cover: every code outside `reachable`.
/// `pub(crate)` because the symbolic encoding-cost derivation in
/// [`crate::csc`] builds the same don't-care set from a symbolically
/// enumerated code list.
pub(crate) fn unreachable_cover(vars: usize, reachable: &BTreeSet<u64>) -> Cover {
    // Complement of the reachable-code minterm cover. For small signal
    // counts enumerate directly; otherwise go through Cover::complement.
    if vars <= 16 {
        let mut dc = Cover::empty(vars);
        for code in 0..(1u64 << vars) {
            if !reachable.contains(&code) {
                dc.push(Cube::minterm(vars, code));
            }
        }
        dc
    } else {
        let mut on = Cover::empty(vars);
        for &code in reachable {
            on.push(Cube::minterm(vars, code));
        }
        on.complement()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rt_stg::{explore, models};

    #[test]
    fn handshake_output_functions() {
        let sg = explore(&models::handshake_stg()).unwrap();
        let funcs = derive_functions(&sg, &LocalDontCares::none()).unwrap();
        assert_eq!(funcs.specs.len(), 1, "only b is implemented");
        let spec = &funcs.specs[0];
        // ER(b+) = state a=1,b=0 -> code 0b01; ER(b-) = a=0,b=1 -> 0b10.
        assert!(spec.set_on.evaluate(0b01));
        assert!(!spec.set_on.evaluate(0b10));
        assert!(spec.reset_on.evaluate(0b10));
        assert!(!spec.reset_on.evaluate(0b01));
    }

    #[test]
    fn celement_functions_are_majority_like() {
        let sg = explore(&models::celement_stg()).unwrap();
        let funcs = derive_functions(&sg, &LocalDontCares::none()).unwrap();
        let spec = &funcs.specs[0];
        // ER(c+): a=1,b=1,c=0 -> set covers code 0b011.
        assert!(spec.set_on.evaluate(0b011));
        // ER(c-): a=0,b=0,c=1 -> reset covers 0b100.
        assert!(spec.reset_on.evaluate(0b100));
        // Quiescent state 0b111 (c high, inputs high... actually after
        // c+ inputs fall) is not in the set on-set.
        assert!(!spec.set_on.evaluate(0b111));
    }

    #[test]
    fn csc_conflict_rejected() {
        let sg = explore(&models::fifo_stg()).unwrap();
        let err = derive_functions(&sg, &LocalDontCares::none()).unwrap_err();
        assert!(matches!(err, SynthError::CscConflict { .. }));
    }

    #[test]
    fn fifo_with_state_signal_derives() {
        let sg = explore(&models::fifo_stg_csc()).unwrap();
        let funcs = derive_functions(&sg, &LocalDontCares::none()).unwrap();
        assert_eq!(funcs.specs.len(), 3, "lo, ro, x");
        for spec in &funcs.specs {
            assert!(!spec.set_on.is_empty(), "every signal rises somewhere");
            assert!(!spec.reset_on.is_empty());
        }
    }

    #[test]
    fn local_dont_cares_shrink_on_sets() {
        let sg = explore(&models::handshake_stg()).unwrap();
        let b = rt_stg::SignalId(1);
        // Free b's function in its rising excitation state.
        let er = sg.excitation_region(SignalEvent::rise(b));
        let mut dc = LocalDontCares::none();
        dc.add(b, er);
        let funcs = derive_functions(&sg, &dc).unwrap();
        assert!(funcs.specs[0].set_on.is_empty(), "ER(b+) moved to DC");
        assert!(funcs.specs[0].set_dc.evaluate(0b01));
    }

    #[test]
    fn excitation_cover_matches_region() {
        let sg = explore(&models::handshake_stg()).unwrap();
        let b = rt_stg::SignalId(1);
        let cover = excitation_cover(&sg, SignalEvent::rise(b));
        assert!(cover.evaluate(0b01));
        assert!(!cover.evaluate(0b00));
    }

    #[test]
    fn derive_functions_for_agrees_across_backends() {
        let mut explicit = ReachEngine::explicit();
        let mut symbolic = ReachEngine::symbolic();
        for (name, stg) in [
            ("handshake", models::handshake_stg()),
            ("celement", models::celement_stg()),
            ("fifo_csc", models::fifo_stg_csc()),
        ] {
            let a = derive_functions_for(&mut explicit, &stg, &LocalDontCares::none())
                .unwrap_or_else(|e| panic!("{name} explicit: {e}"));
            let b = derive_functions_for(&mut symbolic, &stg, &LocalDontCares::none())
                .unwrap_or_else(|e| panic!("{name} symbolic: {e}"));
            assert_eq!(a.vars, b.vars, "{name}");
            assert_eq!(a.specs.len(), b.specs.len(), "{name}");
            for (sa, sb) in a.specs.iter().zip(&b.specs) {
                assert_eq!(sa.signal, sb.signal, "{name}");
                for code in 0..(1u64 << a.vars) {
                    assert_eq!(sa.set_on.evaluate(code), sb.set_on.evaluate(code), "{name}");
                    assert_eq!(sa.set_dc.evaluate(code), sb.set_dc.evaluate(code), "{name}");
                    assert_eq!(
                        sa.reset_on.evaluate(code),
                        sb.reset_on.evaluate(code),
                        "{name}"
                    );
                    assert_eq!(
                        sa.reset_dc.evaluate(code),
                        sb.reset_dc.evaluate(code),
                        "{name}"
                    );
                }
            }
        }
        assert!(
            symbolic.stats().manager_reuses >= 2,
            "one manager across the sweep"
        );
    }

    #[test]
    fn excitation_cover_for_matches_graph_level_cover() {
        let mut engine = ReachEngine::symbolic();
        let stg = models::handshake_stg();
        let b = rt_stg::SignalId(1);
        let via_engine =
            excitation_cover_for(&mut engine, &stg, SignalEvent::rise(b)).expect("covers");
        let sg = explore(&stg).unwrap();
        let direct = excitation_cover(&sg, SignalEvent::rise(b));
        for code in 0..4u64 {
            assert_eq!(via_engine.evaluate(code), direct.evaluate(code));
        }
    }

    #[test]
    fn unreachable_codes_are_dont_cares() {
        let sg = explore(&models::handshake_stg()).unwrap();
        let funcs = derive_functions(&sg, &LocalDontCares::none()).unwrap();
        let spec = &funcs.specs[0];
        // Handshake reaches all four codes of (a,b): no unreachable DC.
        for code in 0..4u64 {
            let in_dc = spec.set_dc.evaluate(code) || spec.reset_dc.evaluate(code);
            let quiescent = matches!(code, 0b11 | 0b00);
            assert_eq!(
                in_dc, quiescent,
                "only quiescent states are don't-cares, code {code:02b}"
            );
        }
    }
}
