//! The symbolic CSC resolution path: fully-symbolic candidate ranking
//! (no explicit state graph anywhere, asserted via `EngineStats`),
//! threshold routing, and a property test pitting the two conflict
//! detectors against each other on random insertion candidates — the
//! exact perturbations the encoding search enumerates.

use proptest::prelude::*;
use rt_stg::engine::ReachEngine;
use rt_stg::symbolic::csc::csc_conflicts_symbolic;
use rt_stg::{corpus, explore, models, Stg, StgError};
use rt_synth::csc::{
    insert_state_signal_with, resolve_csc_engine, simple_places, CscOptions,
    DEFAULT_SYMBOLIC_THRESHOLD,
};

/// Options forcing the symbolic detector regardless of net size.
fn symbolic_everywhere() -> CscOptions {
    CscOptions {
        symbolic_threshold: 0,
        ..CscOptions::default()
    }
}

#[test]
fn fifo_and_vme_resolve_symbolically_without_any_explicit_graph() {
    for (name, stg) in [
        ("fifo", models::fifo_stg()),
        (
            "vme_read",
            corpus::parse(corpus::VME_READ_G).expect("parses"),
        ),
    ] {
        let mut engine = ReachEngine::symbolic();
        let res = resolve_csc_engine(&stg, &symbolic_everywhere(), &mut engine)
            .unwrap_or_else(|e| panic!("{name}: {e}"));
        assert!(!res.inserted.is_empty(), "{name}: needs a state signal");
        assert!(
            res.sg.is_none(),
            "{name}: the fully symbolic resolution carries no graph"
        );
        assert_eq!(
            engine.stats().graph_builds,
            0,
            "{name}: no explicit StateGraph may be constructed on the symbolic path"
        );
        assert!(
            engine.stats().symbolic_csc > 0,
            "{name}: candidates were ranked by the symbolic detector"
        );
        // Independent check with the explicit analyser, outside the
        // engine: the accepted encoding really is CSC-free and live.
        let sg = explore(&res.stg).unwrap_or_else(|e| panic!("{name}: {e}"));
        assert!(sg.csc_conflicts().is_empty(), "{name}: CSC-free");
        assert!(sg.is_strongly_connected(), "{name}: live");
        assert!(sg.deadlock_states().is_empty(), "{name}: deadlock-free");
    }
}

#[test]
fn default_threshold_keeps_small_nets_on_the_explicit_detector() {
    let stg = models::fifo_stg();
    assert!(stg.net().place_count() < DEFAULT_SYMBOLIC_THRESHOLD);
    let mut engine = ReachEngine::symbolic();
    let res = resolve_csc_engine(&stg, &CscOptions::default(), &mut engine).expect("resolves");
    assert!(
        res.sg.is_some(),
        "below the threshold the explicit detector runs and keeps its graph"
    );
    assert!(engine.stats().graph_builds > 0);
}

#[test]
fn wide_csc_free_nets_route_symbolically_by_default() {
    // chain32: 66 places (past the one-word packing budget and the
    // default threshold), strictly sequential, CSC-free.
    let stg = models::chain_stg(32);
    assert!(stg.net().place_count() >= DEFAULT_SYMBOLIC_THRESHOLD);
    let mut engine = ReachEngine::symbolic();
    let res = resolve_csc_engine(&stg, &CscOptions::default(), &mut engine).expect("resolves");
    assert!(res.inserted.is_empty(), "already CSC-free");
    assert!(res.sg.is_none());
    assert_eq!(engine.stats().graph_builds, 0);
    assert_eq!(engine.stats().symbolic_csc, 1);
}

#[test]
fn symbolic_and_explicit_paths_insert_equally_many_signals() {
    // The two detectors may tie-break differently (per-code vs
    // per-state covers), but both must reach a CSC-free encoding of
    // the paper models with the same number of inserted signals.
    for (name, stg) in [
        ("fifo", models::fifo_stg()),
        (
            "vme_read",
            corpus::parse(corpus::VME_READ_G).expect("parses"),
        ),
        (
            "pipeline_stage",
            corpus::parse(corpus::PIPELINE_STAGE_G).expect("parses"),
        ),
    ] {
        let explicit =
            resolve_csc_engine(&stg, &CscOptions::default(), &mut ReachEngine::explicit())
                .unwrap_or_else(|e| panic!("{name} explicit: {e}"));
        let symbolic =
            resolve_csc_engine(&stg, &symbolic_everywhere(), &mut ReachEngine::symbolic())
                .unwrap_or_else(|e| panic!("{name} symbolic: {e}"));
        assert_eq!(
            explicit.inserted.len(),
            symbolic.inserted.len(),
            "{name}: same number of state signals"
        );
    }
}

/// The conflicted models the search perturbs.
fn conflicted_models() -> Vec<Stg> {
    vec![
        models::fifo_stg(),
        corpus::parse(corpus::VME_READ_G).expect("parses"),
        corpus::parse(corpus::PIPELINE_STAGE_G).expect("parses"),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Random state-signal insertion candidates — exactly the nets the
    /// encoding search enumerates — must get the same verdict from
    /// both detectors: equal conflict counts and marking counts when
    /// the candidate explores, matching `Inconsistent` rejections when
    /// it does not.
    #[test]
    fn random_insertion_candidates_agree_across_detectors(
        model in 0usize..3,
        plus_pick in 0usize..1 << 16,
        minus_pick in 0usize..1 << 16,
        token_after in proptest::bool::ANY,
    ) {
        let stg = &conflicted_models()[model];
        let places = simple_places(stg);
        let plus = places[plus_pick % places.len()];
        let minus = places[minus_pick % places.len()];
        if plus == minus {
            return;
        }
        let candidate = insert_state_signal_with(stg, "px", plus, minus, token_after);
        match explore(&candidate) {
            Ok(sg) => {
                let analysis = csc_conflicts_symbolic(&candidate)
                    .expect("explicitly explorable candidates analyse symbolically");
                prop_assert_eq!(analysis.conflicts, sg.csc_conflicts().len() as u64);
                prop_assert_eq!(analysis.markings, sg.state_count() as u64);
                prop_assert_eq!(analysis.deadlock_free, sg.deadlock_states().is_empty());
                prop_assert_eq!(analysis.strongly_connected, sg.is_strongly_connected());
            }
            Err(StgError::Inconsistent { .. }) => {
                let err = csc_conflicts_symbolic(&candidate)
                    .expect_err("inconsistent candidates must be rejected symbolically too");
                prop_assert!(matches!(err, StgError::Inconsistent { .. }));
            }
            // Unbounded/oversized candidates are outside the detector
            // contract (both analysers only compare on safe nets).
            Err(_) => {}
        }
    }
}
