//! The degradation matrix (compiled only with `--features
//! fault-injection`): every [`Degradation`] variant is driven by an
//! injected or real budget fault, and the engine's recorded reason must
//! match the fault exactly — same order, nothing extra, and never a
//! degradation for a hard stop like cancellation.
//!
//! Every test arms a fault (or, for the pure-budget case, a fault that
//! can never fire) so the process-global fault slot serializes the
//! whole binary — an unguarded analysis here could otherwise consume a
//! concurrently armed test's shot.

#![cfg(feature = "fault-injection")]

use rt_stg::engine::{Degradation, ReachEngine};
use rt_stg::faults::{arm, Fault};
use rt_stg::{models, Budget, StgError};
use rt_synth::csc::{resolve_csc_engine, CscOptions};

#[test]
fn symbolic_node_exhaustion_degrades_via_trim_retry() {
    let stg = models::fifo_stg();
    let expected = ReachEngine::explicit()
        .summary(&stg)
        .expect("fresh summary")
        .markings;
    let _guard = arm(Fault::ExhaustNodesAt { iteration: 1 }, 1);
    let mut engine = ReachEngine::symbolic();
    let summary = engine.summary(&stg).expect("trim-retry rescues the query");
    assert_eq!(summary.markings, expected);
    assert_eq!(
        engine.stats().degradations,
        vec![Degradation::SymbolicTrimRetry]
    );
}

#[test]
fn persistent_node_exhaustion_degrades_to_the_explicit_walk() {
    let stg = models::fifo_stg();
    let expected = ReachEngine::explicit()
        .summary(&stg)
        .expect("fresh summary")
        .markings;
    // Two shots: the first blows the initial fixpoint, the second blows
    // the post-trim retry, leaving only the explicit fallback.
    let _guard = arm(Fault::ExhaustNodesAt { iteration: 1 }, 2);
    let mut engine = ReachEngine::symbolic();
    let summary = engine.summary(&stg).expect("explicit fallback serves");
    assert_eq!(summary.markings, expected);
    assert_eq!(
        engine.stats().degradations,
        vec![
            Degradation::SymbolicTrimRetry,
            Degradation::SymbolicToExplicit
        ]
    );
}

#[test]
fn explicit_state_exhaustion_degrades_to_the_symbolic_backend() {
    let stg = models::fifo_stg();
    let expected = ReachEngine::explicit()
        .summary(&stg)
        .expect("fresh summary")
        .markings;
    let _guard = arm(Fault::ExhaustStatesAt { round: 1 }, 1);
    let mut engine = ReachEngine::explicit();
    let summary = engine.summary(&stg).expect("symbolic fallback serves");
    assert_eq!(summary.markings, expected);
    assert_eq!(
        engine.stats().degradations,
        vec![Degradation::ExplicitToSymbolic]
    );
}

#[test]
fn cancellation_is_never_papered_over_by_a_degradation() {
    let stg = models::fifo_stg();
    let _guard = arm(Fault::CancelAt { round: 0 }, 1);
    let mut engine = ReachEngine::explicit();
    assert!(matches!(engine.summary(&stg), Err(StgError::Cancelled)));
    assert!(engine.stats().degradations.is_empty());
}

#[test]
fn budget_starved_candidate_search_returns_a_partial_resolution() {
    // Pure-budget path, no injected fault: the state budget admits the
    // input net exactly, so every (strictly larger) candidate insertion
    // blows it and the search must surrender a truncated result instead
    // of aborting. The never-firing armed fault only takes the lock.
    let _guard = arm(Fault::CancelAt { round: usize::MAX }, 1);
    let stg = models::fifo_stg();
    let baseline = ReachEngine::explicit()
        .state_graph(&stg)
        .expect("fits unbudgeted")
        .state_count();
    let mut engine =
        ReachEngine::explicit().with_budget(Budget::unlimited().with_max_states(baseline));
    let resolution = resolve_csc_engine(&stg, &CscOptions::default(), &mut engine)
        .expect("partial result, not an abort");
    assert!(resolution.truncated, "search must flag the truncation");
    assert!(
        resolution.inserted.is_empty(),
        "no candidate fits the budget"
    );
    assert!(
        engine
            .stats()
            .degradations
            .contains(&Degradation::PartialSynthesis),
        "{:?}",
        engine.stats().degradations
    );
}
