//! Bridging the synthesis flow to the verifier and the physical flow.
//!
//! Two conversions close the Figure-2 loop:
//!
//! * [`orderings_from_constraints`] — signal-level [`RtConstraint`]s from
//!   `rt-core` become net-level [`NetOrdering`]s for the conformance
//!   checker (nets are matched by name);
//! * [`margin_report`] — the Section-6 "propagation of relative timing
//!   constraints to sizing tools": every back-annotated constraint is
//!   turned into a path constraint and a per-gate delay budget stating
//!   how much slack each gate on the fast path has before the ordering
//!   breaks.

use rt_core::RtConstraint;
use rt_netlist::Netlist;
use rt_stg::{StateGraph, Stg};

use crate::compose::NetOrdering;
use crate::path::{path_constraints, PathConstraint};

/// Converts signal-level constraints to net-level orderings by matching
/// net names against the state graph's signal names. Constraints whose
/// signals do not appear in the netlist (e.g. events of signals the
/// implementation optimized away) are skipped.
pub fn orderings_from_constraints(
    netlist: &Netlist,
    sg: &StateGraph,
    constraints: &[RtConstraint],
) -> Vec<NetOrdering> {
    constraints
        .iter()
        .filter_map(|c| {
            let before = netlist.net_by_name(sg.signal_name(c.assumption.before.signal))?;
            let after = netlist.net_by_name(sg.signal_name(c.assumption.after.signal))?;
            Some(NetOrdering::new(
                (before, c.assumption.before.edge.target_value()),
                (after, c.assumption.after.edge.target_value()),
            ))
        })
        .collect()
}

/// One line of the sizing report: a path constraint plus the per-gate
/// slack budget on its fast path.
#[derive(Debug, Clone)]
pub struct MarginLine {
    /// The underlying path constraint.
    pub constraint: PathConstraint,
    /// `(gate name, current delay ps, allowed delay ps)` for each gate on
    /// the fast path: how slow each fast-path gate may become (keeping
    /// the others nominal) before the margin is gone.
    pub budgets: Vec<(String, u64, u64)>,
}

impl MarginLine {
    /// For a violated constraint (negative margin): the percentage by
    /// which the fast path must be sped up — "the sizing tool should
    /// know how much race margin to take" (§6). `None` when the
    /// constraint already holds.
    pub fn required_speedup_pct(&self) -> Option<u64> {
        if self.constraint.holds() {
            return None;
        }
        let fast = self.constraint.fast_delay_ps.max(1);
        let deficit = self.constraint.fast_delay_ps - self.constraint.slow_delay_ps + 1;
        Some(deficit * 100 / fast + 1)
    }

    /// Renders the line for the report.
    pub fn render(&self, netlist: &Netlist) -> String {
        let mut out = self.constraint.describe(netlist);
        for (gate, current, allowed) in &self.budgets {
            out.push_str(&format!(
                "\n    gate `{gate}`: {current} ps now, may grow to {allowed} ps"
            ));
        }
        out
    }
}

/// Builds the sizing report: each ordering becomes a path constraint and
/// a fast-path delay budget. "This requires transforming RT constraints
/// in the form of events into delay constraints for gates, wires and
/// paths in the circuit" (§6).
pub fn margin_report(netlist: &Netlist, spec: &Stg, orderings: &[NetOrdering]) -> Vec<MarginLine> {
    path_constraints(netlist, spec, orderings)
        .into_iter()
        .map(|constraint| {
            let margin = constraint.margin_ps().max(0) as u64;
            let mut budgets = Vec::new();
            for window in constraint.fast_path.windows(2) {
                let (net, value) = window[1];
                if let Some(gate_id) = netlist.driver(net) {
                    let gate = netlist.gate(gate_id);
                    let current = gate.kind.delay_model(gate.inputs.len()).for_edge(value);
                    budgets.push((gate.name.clone(), current, current + margin));
                }
            }
            MarginLine {
                constraint,
                budgets,
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rt_core::{RtAssumption, RtSynthesisFlow};
    use rt_netlist::cells::majority_celement;
    use rt_stg::{models, Edge};

    #[test]
    fn constraints_translate_to_net_orderings() {
        let stg = models::fifo_stg();
        let s = |n: &str| stg.signal_by_name(n).unwrap();
        let user = vec![
            RtAssumption::user(s("ri"), Edge::Fall, s("li"), Edge::Rise),
            RtAssumption::user(s("li"), Edge::Fall, s("ri"), Edge::Fall),
        ];
        let report = RtSynthesisFlow::new().run(&stg, &user).expect("flow runs");
        let orderings = orderings_from_constraints(
            &report.synthesis.netlist,
            &report.lazy_sg,
            &report.constraints,
        );
        assert_eq!(orderings.len(), report.constraints.len());
        // The translated orderings are consistent with the names.
        let described: Vec<String> = orderings
            .iter()
            .map(|o| o.describe(&report.synthesis.netlist))
            .collect();
        assert!(
            described.iter().any(|d| d == "ri- before li+"),
            "{described:?}"
        );
    }

    #[test]
    fn margin_report_budgets_fast_path_gates() {
        let (netlist, p) = majority_celement();
        let spec = models::celement_stg();
        let orderings = [NetOrdering::new((p.bc, true), (p.ab, false))];
        let report = margin_report(&netlist, &spec, &orderings);
        assert_eq!(report.len(), 1);
        let line = &report[0];
        assert!(!line.budgets.is_empty(), "and_bc is on the fast path");
        for (gate, current, allowed) in &line.budgets {
            assert!(
                allowed >= current,
                "budget can only extend: {gate} {current} -> {allowed}"
            );
        }
        let text = line.render(&netlist);
        assert!(text.contains("may grow to"), "{text}");
    }

    #[test]
    fn violated_constraints_request_a_speedup() {
        // Build an artificial violation: demand the *slow* direction.
        let (netlist, p) = majority_celement();
        let spec = models::celement_stg();
        // Reverse of the real constraint: ab- before bc+ (slow must beat
        // fast) — nominally violated.
        let orderings = [NetOrdering::new((p.ab, false), (p.bc, true))];
        let report = margin_report(&netlist, &spec, &orderings);
        assert_eq!(report.len(), 1);
        let line = &report[0];
        assert!(!line.constraint.holds());
        let speedup = line.required_speedup_pct().expect("violated");
        assert!(speedup > 0 && speedup <= 100, "need {speedup}%");
        // A satisfied constraint requests nothing.
        let ok = margin_report(
            &netlist,
            &spec,
            &[NetOrdering::new((p.bc, true), (p.ab, false))],
        );
        assert_eq!(ok[0].required_speedup_pct(), None);
    }

    #[test]
    fn missing_signals_are_skipped() {
        // The RT FIFO netlist has no `x` net; constraints about x vanish.
        let stg = models::fifo_stg();
        let report = RtSynthesisFlow::new().run(&stg, &[]).expect("flow runs");
        // report constraints mention x0, which exists in THIS netlist; use
        // the hand netlist instead, which has no x0.
        let (hand, _) = rt_netlist::fifo::rt_fifo();
        let orderings = orderings_from_constraints(&hand, &report.lazy_sg, &report.constraints);
        // x0 events do not resolve against the hand netlist.
        assert!(orderings.len() <= report.constraints.len());
    }
}
