//! The composed verification state space: netlist × specification.
//!
//! Semantics: every *logic* gate has an unbounded delay; an **excited**
//! gate (evaluated output ≠ current output) may fire at any time. The
//! environment may fire any input event the specification enables.
//! Interface transitions must be enabled in the specification
//! (conformance). Inverters and buffers are treated as **transparent**
//! (zero-delay parts of the complex gates they feed) — the classic atomic
//! complex-gate assumption `petrify` makes; without it no gC netlist with
//! input bubbles would be speed-independent.
//!
//! Failure classes:
//!
//! * [`Failure::UnexpectedOutput`] — the circuit produced an interface
//!   edge the specification does not allow in the current state; the
//!   record carries the other transitions that were pending, from which
//!   [`crate::require`] proposes repairing orderings;
//! * [`Failure::SemiModularity`] (strict mode only) — a gate's excitation
//!   was withdrawn before it fired.
//!
//! Relative timing enters through [`NetOrdering`]s: `before → after`
//! suppresses any interleaving where `after` fires while `before` is
//! pending — precisely how the paper's verifier "disallows" the
//! erroneous firing through relative timing".

use std::collections::{HashMap, HashSet, VecDeque};

use rt_netlist::{GateId, GateKind, NetId, NetKind, Netlist};
use rt_stg::engine::ReachEngine;
use rt_stg::{Edge, SignalEvent, StateGraph, StateId, Stg, StgError};

/// A net-level relative-timing ordering: wherever both transitions are
/// pending, `before` fires first.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct NetOrdering {
    /// Net and target value of the earlier transition.
    pub before: (NetId, bool),
    /// Net and target value of the later transition.
    pub after: (NetId, bool),
}

impl NetOrdering {
    /// Creates an ordering.
    pub fn new(before: (NetId, bool), after: (NetId, bool)) -> Self {
        NetOrdering { before, after }
    }

    /// Renders against a netlist's net names, e.g. `ac+ before ab-`.
    pub fn describe(&self, netlist: &Netlist) -> String {
        let edge = |v: bool| if v { '+' } else { '-' };
        format!(
            "{}{} before {}{}",
            netlist.net_name(self.before.0),
            edge(self.before.1),
            netlist.net_name(self.after.0),
            edge(self.after.1),
        )
    }
}

/// A verification failure with a witness trace of `(net, value)` steps
/// from reset.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Failure {
    /// The circuit fired an interface edge the spec does not enable.
    UnexpectedOutput {
        /// The offending net.
        net: NetId,
        /// The value it switched to.
        value: bool,
        /// Other transitions pending at the failure point (repair
        /// candidates for relative timing).
        pending_others: Vec<(NetId, bool)>,
        /// Transition trace from the initial state.
        trace: Vec<(NetId, bool)>,
    },
    /// Strict mode: a gate's excitation was withdrawn before it fired.
    SemiModularity {
        /// The de-excited gate.
        gate: GateId,
        /// The transition that withdrew the excitation.
        withdrawn_by: (NetId, bool),
        /// Transition trace from the initial state.
        trace: Vec<(NetId, bool)>,
    },
}

impl Failure {
    /// Human-readable description.
    pub fn describe(&self, netlist: &Netlist) -> String {
        match self {
            Failure::UnexpectedOutput {
                net, value, trace, ..
            } => format!(
                "unexpected output {}{} after {} steps",
                netlist.net_name(*net),
                if *value { '+' } else { '-' },
                trace.len()
            ),
            Failure::SemiModularity {
                gate,
                withdrawn_by,
                trace,
            } => format!(
                "semi-modularity: gate `{}` de-excited by {}{} after {} steps",
                netlist.gate(*gate).name,
                netlist.net_name(withdrawn_by.0),
                if withdrawn_by.1 { '+' } else { '-' },
                trace.len()
            ),
        }
    }
}

/// Overall verdict.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Verdict {
    /// No failures: the circuit conforms (under the given orderings).
    Conforms,
    /// At least one failure was found.
    Fails,
}

/// Verification options.
#[derive(Debug, Clone, Copy, Default)]
pub struct VerifyOptions {
    /// Also report semi-modularity violations (stricter than
    /// conformance; many correct circuits trip benign de-excitations).
    pub strict_semi_modularity: bool,
}

/// Verification result.
///
/// `PartialEq`/`Eq` compare the full report — verdict, deduplicated
/// failures (traces included) and the composed-state count — which is
/// what the service layer's bit-identical-to-direct-call pin and its
/// memo cache rely on.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct VerifyReport {
    /// The verdict.
    pub verdict: Verdict,
    /// Failures found (deduplicated).
    pub failures: Vec<Failure>,
    /// Number of composed states explored.
    pub states_explored: usize,
}

impl VerifyReport {
    /// Whether verification passed.
    pub fn passed(&self) -> bool {
        self.verdict == Verdict::Conforms
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
struct ComposedState {
    net_values: u64,
    spec: StateId,
}

/// Verifies `netlist` against the reachable behaviour of `spec`,
/// explored through a throwaway explicit-backend [`ReachEngine`].
///
/// # Errors
///
/// Returns [`StgError`] when the specification cannot be explored.
pub fn verify(
    netlist: &Netlist,
    spec: &Stg,
    orderings: &[NetOrdering],
) -> Result<VerifyReport, StgError> {
    verify_with_engine(netlist, spec, orderings, &mut ReachEngine::explicit())
}

/// [`verify`] through a caller-owned [`ReachEngine`] — the variant the
/// synthesis pipeline uses so the specification's reachable states come
/// from the same engine (same options, same warm symbolic manager) that
/// drove synthesis.
///
/// # Errors
///
/// Returns [`StgError`] when the specification cannot be explored.
pub fn verify_with_engine(
    netlist: &Netlist,
    spec: &Stg,
    orderings: &[NetOrdering],
    engine: &mut ReachEngine,
) -> Result<VerifyReport, StgError> {
    let sg = engine.state_graph(spec)?;
    Ok(verify_against_sg(netlist, &sg, orderings))
}

/// Verifies against an already-computed (possibly *lazy*) state graph —
/// the entry point used after relative-timing synthesis, where the
/// specification is the reduced graph.
pub fn verify_against_sg(
    netlist: &Netlist,
    sg: &StateGraph,
    orderings: &[NetOrdering],
) -> VerifyReport {
    verify_with_options(netlist, sg, orderings, VerifyOptions::default())
}

/// Full-control entry point.
pub fn verify_with_options(
    netlist: &Netlist,
    sg: &StateGraph,
    orderings: &[NetOrdering],
    options: VerifyOptions,
) -> VerifyReport {
    Composer::new(netlist, sg, orderings, options)
        .run(None)
        .expect("the unbudgeted composed walk cannot be interrupted")
}

/// [`verify_with_options`] under an [`rt_stg::Budget`]: the composed
/// netlist × specification walk polls the budget's cancellation token,
/// deadline and state cap once per dequeued composed state.
///
/// A verdict over a *partial* state space would be unsound (an
/// unexplored interleaving could still fail), so budget exhaustion is a
/// hard error here, never a degraded report — unlike reachability,
/// where the engine can fall back to another backend.
///
/// # Errors
///
/// * [`StgError::Cancelled`] — the token fired or the deadline passed;
/// * [`StgError::StateBudgetExceeded`] — more composed states than
///   `budget.max_states`.
pub fn verify_with_budget(
    netlist: &Netlist,
    sg: &StateGraph,
    orderings: &[NetOrdering],
    options: VerifyOptions,
    budget: &rt_stg::Budget,
) -> Result<VerifyReport, StgError> {
    Composer::new(netlist, sg, orderings, options).run(Some(budget))
}

struct Composer<'a> {
    netlist: &'a Netlist,
    sg: &'a StateGraph,
    orderings: &'a [NetOrdering],
    options: VerifyOptions,
    /// Net ↔ spec-signal correspondence by name.
    net_signal: Vec<Option<rt_stg::SignalId>>,
    /// Spec input events mapped to nets.
    input_nets: Vec<(NetId, rt_stg::SignalId)>,
    /// Inverter/buffer outputs resolved combinationally.
    transparent: Vec<bool>,
    failures: Vec<Failure>,
    failure_keys: HashSet<String>,
}

impl<'a> Composer<'a> {
    fn new(
        netlist: &'a Netlist,
        sg: &'a StateGraph,
        orderings: &'a [NetOrdering],
        options: VerifyOptions,
    ) -> Self {
        let mut net_signal = vec![None; netlist.net_count()];
        let mut input_nets = Vec::new();
        for net in netlist.nets() {
            for signal in sg.signals() {
                if sg.signal_name(signal) == netlist.net_name(net) {
                    net_signal[net.index()] = Some(signal);
                    if netlist.net_kind(net) == NetKind::Input {
                        input_nets.push((net, signal));
                    }
                }
            }
        }
        let mut transparent = vec![false; netlist.net_count()];
        for gate_id in netlist.gates() {
            let gate = netlist.gate(gate_id);
            if matches!(gate.kind, GateKind::Inv | GateKind::Buf)
                && net_signal[gate.output.index()].is_none()
            {
                transparent[gate.output.index()] = true;
            }
        }
        Composer {
            netlist,
            sg,
            orderings,
            options,
            net_signal,
            input_nets,
            transparent,
            failures: Vec::new(),
            failure_keys: HashSet::new(),
        }
    }

    fn stored_value(state: u64, net: NetId) -> bool {
        state >> net.index() & 1 == 1
    }

    fn with_value(state: u64, net: NetId, value: bool) -> u64 {
        if value {
            state | 1 << net.index()
        } else {
            state & !(1 << net.index())
        }
    }

    /// Value of a net, reading through transparent inverters/buffers.
    fn read(&self, state: u64, net: NetId, depth: usize) -> bool {
        if !self.transparent[net.index()] || depth > 8 {
            return Self::stored_value(state, net);
        }
        let gate_id = self
            .netlist
            .driver(net)
            .expect("transparent nets are driven");
        let gate = self.netlist.gate(gate_id);
        let input = self.read(state, gate.inputs[0], depth + 1);
        match gate.kind {
            GateKind::Inv => !input,
            GateKind::Buf => input,
            _ => unreachable!("transparent nets are INV/BUF outputs"),
        }
    }

    fn eval_gate(&self, state: u64, gate_id: GateId) -> bool {
        let gate = self.netlist.gate(gate_id);
        let inputs: Vec<bool> = gate
            .inputs
            .iter()
            .map(|&n| self.read(state, n, 0))
            .collect();
        gate.kind
            .evaluate(&inputs, Self::stored_value(state, gate.output))
    }

    /// Initial net values: derived from the spec's initial code for
    /// interface nets, then the rest settled combinationally.
    fn initial_values(&self) -> u64 {
        let mut values = 0u64;
        for net in self.netlist.nets() {
            if let Some(signal) = self.net_signal[net.index()] {
                values =
                    Self::with_value(values, net, self.sg.signal_value(self.sg.initial(), signal));
            }
        }
        for _ in 0..2 * self.netlist.gate_count() + 4 {
            let mut changed = false;
            for gate_id in self.netlist.gates() {
                let gate = self.netlist.gate(gate_id);
                if self.net_signal[gate.output.index()].is_some() {
                    continue; // interface nets hold their spec value
                }
                let out = self.eval_gate(values, gate_id);
                if out != Self::stored_value(values, gate.output) {
                    values = Self::with_value(values, gate.output, out);
                    changed = true;
                }
            }
            if !changed {
                break;
            }
        }
        values
    }

    /// All pending transitions in a composed state: excited non-
    /// transparent gates plus spec-enabled input events.
    fn pending(&self, state: &ComposedState) -> Vec<(NetId, bool, Option<GateId>)> {
        let mut out = Vec::new();
        for gate_id in self.netlist.gates() {
            let gate = self.netlist.gate(gate_id);
            if self.transparent[gate.output.index()] {
                continue;
            }
            let current = Self::stored_value(state.net_values, gate.output);
            let next = self.eval_gate(state.net_values, gate_id);
            if next != current {
                out.push((gate.output, next, Some(gate_id)));
            }
        }
        for &(net, signal) in &self.input_nets {
            let current = Self::stored_value(state.net_values, net);
            let event = SignalEvent::new(signal, if current { Edge::Fall } else { Edge::Rise });
            if self.sg.is_enabled(state.spec, event) || self.enabled_after_silent(state.spec, event)
            {
                out.push((net, !current, None));
            }
        }
        out
    }

    fn enabled_after_silent(&self, state: StateId, event: SignalEvent) -> bool {
        self.sg
            .successors(state)
            .iter()
            .any(|arc| arc.event.is_none() && self.sg.is_enabled(arc.to, event))
    }

    fn suppressed(
        &self,
        candidate: (NetId, bool),
        pending: &[(NetId, bool, Option<GateId>)],
    ) -> bool {
        self.orderings
            .iter()
            .any(|o| o.after == candidate && pending.iter().any(|&(n, v, _)| (n, v) == o.before))
    }

    fn record(&mut self, failure: Failure) {
        let key = match &failure {
            Failure::UnexpectedOutput { net, value, .. } => {
                format!("u{}{}", net.index(), value)
            }
            Failure::SemiModularity {
                gate, withdrawn_by, ..
            } => {
                format!(
                    "h{}:{}:{}",
                    gate.index(),
                    withdrawn_by.0.index(),
                    withdrawn_by.1
                )
            }
        };
        if self.failure_keys.insert(key) {
            self.failures.push(failure);
        }
    }

    fn run(mut self, budget: Option<&rt_stg::Budget>) -> Result<VerifyReport, StgError> {
        let initial = ComposedState {
            net_values: self.initial_values(),
            spec: self.sg.initial(),
        };
        let mut seen: HashSet<ComposedState> = HashSet::new();
        let mut parents: HashMap<ComposedState, (ComposedState, (NetId, bool))> = HashMap::new();
        let mut queue = VecDeque::new();
        seen.insert(initial);
        queue.push_back(initial);
        let mut explored = 0usize;
        let limit = 1 << 18;

        while let Some(state) = queue.pop_front() {
            explored += 1;
            if explored > limit {
                break;
            }
            if let Some(budget) = budget {
                if budget.cancelled() {
                    return Err(StgError::Cancelled);
                }
                if budget.states_exhausted(explored) {
                    return Err(StgError::StateBudgetExceeded { states: explored });
                }
            }
            let pending = self.pending(&state);
            for &(net, value, gate) in &pending {
                if self.suppressed((net, value), &pending) {
                    continue;
                }
                let mut next_spec = state.spec;
                if let Some(signal) = self.net_signal[net.index()] {
                    let event =
                        SignalEvent::new(signal, if value { Edge::Rise } else { Edge::Fall });
                    match self.spec_successor(state.spec, event) {
                        Some(q) => next_spec = q,
                        None => {
                            if gate.is_some() {
                                let pending_others: Vec<(NetId, bool)> = pending
                                    .iter()
                                    .filter(|&&(n, v, _)| (n, v) != (net, value))
                                    .map(|&(n, v, _)| (n, v))
                                    .collect();
                                self.record(Failure::UnexpectedOutput {
                                    net,
                                    value,
                                    pending_others,
                                    trace: trace_of(&parents, state),
                                });
                            }
                            continue;
                        }
                    }
                }
                let next = ComposedState {
                    net_values: Self::with_value(state.net_values, net, value),
                    spec: next_spec,
                };
                if self.options.strict_semi_modularity {
                    let next_pending = self.pending(&next);
                    for &(p_net, p_val, p_gate) in &pending {
                        let Some(p_gate) = p_gate else { continue };
                        if p_net == net {
                            continue;
                        }
                        let still = next_pending
                            .iter()
                            .any(|&(n, v, _)| n == p_net && v == p_val);
                        if !still {
                            self.record(Failure::SemiModularity {
                                gate: p_gate,
                                withdrawn_by: (net, value),
                                trace: trace_of(&parents, state),
                            });
                        }
                    }
                }
                if seen.insert(next) {
                    parents.insert(next, (state, (net, value)));
                    queue.push_back(next);
                }
            }
        }

        Ok(VerifyReport {
            verdict: if self.failures.is_empty() {
                Verdict::Conforms
            } else {
                Verdict::Fails
            },
            failures: self.failures,
            states_explored: explored,
        })
    }

    /// Follows `event` in the spec, skipping over silent arcs.
    fn spec_successor(&self, state: StateId, event: SignalEvent) -> Option<StateId> {
        for arc in self.sg.successors(state) {
            if arc.event == Some(event) {
                return Some(arc.to);
            }
        }
        for arc in self.sg.successors(state) {
            if arc.event.is_none() {
                for arc2 in self.sg.successors(arc.to) {
                    if arc2.event == Some(event) {
                        return Some(arc2.to);
                    }
                }
            }
        }
        None
    }
}

fn trace_of(
    parents: &HashMap<ComposedState, (ComposedState, (NetId, bool))>,
    state: ComposedState,
) -> Vec<(NetId, bool)> {
    let mut steps = Vec::new();
    let mut cursor = state;
    while let Some(&(parent, step)) = parents.get(&cursor) {
        steps.push(step);
        cursor = parent;
        if steps.len() > 10_000 {
            break;
        }
    }
    steps.reverse();
    steps
}

#[cfg(test)]
mod tests {
    use super::*;
    use rt_netlist::cells::{atomic_celement, majority_celement};
    use rt_netlist::fifo::si_fifo;
    use rt_stg::models;

    #[test]
    fn atomic_celement_conforms() {
        let (netlist, _, _, _) = atomic_celement();
        let report = verify(&netlist, &models::celement_stg(), &[]).unwrap();
        assert!(report.passed(), "{:?}", report.failures);
    }

    #[test]
    fn majority_celement_fails_unbounded() {
        let (netlist, p) = majority_celement();
        let report = verify(&netlist, &models::celement_stg(), &[]).unwrap();
        assert!(!report.passed());
        // The observable failure is c falling out of order.
        assert!(report.failures.iter().any(|f| matches!(
            f,
            Failure::UnexpectedOutput { net, value: false, .. } if *net == p.c
        )));
    }

    #[test]
    fn majority_celement_passes_with_section5_constraints() {
        let (netlist, p) = majority_celement();
        // "ac and bc will rise before ab falls".
        let orderings = [
            NetOrdering::new((p.ac, true), (p.ab, false)),
            NetOrdering::new((p.bc, true), (p.ab, false)),
        ];
        let report = verify(&netlist, &models::celement_stg(), &orderings).unwrap();
        assert!(
            report.passed(),
            "{:?}",
            report
                .failures
                .iter()
                .map(|f| f.describe(&netlist))
                .collect::<Vec<_>>()
        );
    }

    #[test]
    fn si_fifo_conforms_without_constraints() {
        let (netlist, _) = si_fifo();
        let report = verify(&netlist, &models::fifo_stg_csc(), &[]).unwrap();
        assert!(
            report.passed(),
            "{:?}",
            report
                .failures
                .iter()
                .map(|f| f.describe(&netlist))
                .collect::<Vec<_>>()
        );
    }

    #[test]
    fn failure_traces_are_replayable() {
        let (netlist, _) = majority_celement();
        let report = verify(&netlist, &models::celement_stg(), &[]).unwrap();
        let failure = &report.failures[0];
        let trace = match failure {
            Failure::SemiModularity { trace, .. } | Failure::UnexpectedOutput { trace, .. } => {
                trace
            }
        };
        assert!(!trace.is_empty(), "witness trace reaches the failure");
    }

    #[test]
    fn strict_mode_reports_more() {
        let (netlist, _) = majority_celement();
        let sg = rt_stg::explore(&models::celement_stg()).unwrap();
        let lax = verify_against_sg(&netlist, &sg, &[]);
        let strict = verify_with_options(
            &netlist,
            &sg,
            &[],
            VerifyOptions {
                strict_semi_modularity: true,
            },
        );
        assert!(strict.failures.len() >= lax.failures.len());
    }

    #[test]
    fn ordering_description_uses_net_names() {
        let (netlist, p) = majority_celement();
        let o = NetOrdering::new((p.ac, true), (p.ab, false));
        assert_eq!(o.describe(&netlist), "ac+ before ab-");
    }

    #[test]
    fn budgeted_verification_is_a_hard_gate() {
        let (netlist, _, _, _) = atomic_celement();
        let sg = rt_stg::explore(&models::celement_stg()).unwrap();
        // A generous budget changes nothing.
        let roomy = rt_stg::Budget::unlimited().with_max_states(1 << 16);
        let report =
            verify_with_budget(&netlist, &sg, &[], VerifyOptions::default(), &roomy).unwrap();
        assert!(report.passed());
        // Exhaustion and cancellation are errors, never partial verdicts.
        let tiny = rt_stg::Budget::unlimited().with_max_states(1);
        assert!(matches!(
            verify_with_budget(&netlist, &sg, &[], VerifyOptions::default(), &tiny),
            Err(StgError::StateBudgetExceeded { .. })
        ));
        let cancelled = rt_stg::Budget::unlimited();
        cancelled.cancel.cancel();
        assert!(matches!(
            verify_with_budget(&netlist, &sg, &[], VerifyOptions::default(), &cancelled),
            Err(StgError::Cancelled)
        ));
    }
}
