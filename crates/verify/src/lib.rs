//! # rt-verify — conformance and relative-timing verification
//!
//! Section 5 of the paper: a gate-level circuit is verified against its
//! STG specification under **unbounded gate delays** (speed-independent
//! semantics). Failures that are "due to timing faults" can be removed by
//! relative timing: the verifier accepts a set of net-level orderings and
//! suppresses the interleavings they exclude. The orderings a circuit
//! needs are then turned into **path constraints** via the
//! earliest-common-enabling-signal rule and checked against the delay
//! model (the separation-analysis substitute).
//!
//! * [`compose`] — the composed circuit × specification state space:
//!   unexpected outputs, semi-modularity (hazard) violations, traces;
//! * [`require`] — the §5 loop: extract the RT requirements that make a
//!   failing circuit verify;
//! * [`path`] — common-source path constraints and delay-margin checks.
//!
//! ## Example: the decomposed C-element needs RT constraints
//!
//! ```
//! use rt_netlist::cells::majority_celement;
//! use rt_stg::models::celement_stg;
//! use rt_verify::{verify, Verdict};
//!
//! let (netlist, _) = majority_celement();
//! let spec = celement_stg();
//! let report = verify(&netlist, &spec, &[]).unwrap();
//! assert!(!report.passed(), "not SI under unbounded delays");
//! ```

pub mod bridge;
pub mod compose;
pub mod path;
pub mod require;

pub use bridge::{margin_report, orderings_from_constraints, MarginLine};
pub use compose::{
    verify, verify_against_sg, verify_with_budget, verify_with_engine, verify_with_options,
    Failure, NetOrdering, Verdict, VerifyOptions, VerifyReport,
};
pub use path::{path_constraints, PathConstraint};
pub use require::{extract_requirements, Requirements};
