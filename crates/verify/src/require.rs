//! RT requirement extraction: the Section-5 loop.
//!
//! "The circuits are verified using unbounded delay models to extract the
//! RT requirements": run conformance checking; for each hazard failure,
//! propose the ordering that suppresses it (the withdrawn gate's pending
//! transition must occur *before* the transition that withdrew it); add
//! the ordering and re-verify, until the circuit conforms or no progress
//! is made.

use rt_netlist::Netlist;
use rt_stg::StateGraph;

use crate::compose::{verify_against_sg, Failure, NetOrdering, VerifyReport};

/// Result of requirement extraction.
#[derive(Debug, Clone)]
pub struct Requirements {
    /// Orderings that make the circuit verify (empty when it is SI).
    pub orderings: Vec<NetOrdering>,
    /// The final verification report under those orderings.
    pub report: VerifyReport,
    /// Number of verify/extend iterations used.
    pub iterations: usize,
}

impl Requirements {
    /// Whether the circuit verifies under the extracted requirements.
    pub fn satisfied(&self) -> bool {
        self.report.passed()
    }
}

/// Extracts the relative-timing requirements of `netlist` against the
/// (possibly lazy) specification `sg`.
///
/// Returns the orderings plus the final report; when the report still
/// fails, the circuit has functional (non-timing) errors.
pub fn extract_requirements(
    netlist: &Netlist,
    sg: &StateGraph,
    seed: &[NetOrdering],
) -> Requirements {
    let mut orderings: Vec<NetOrdering> = seed.to_vec();
    let mut iterations = 0;
    loop {
        iterations += 1;
        let report = verify_against_sg(netlist, sg, &orderings);
        if report.passed() {
            // Minimize: drop any ordering whose removal keeps the pass
            // (the verifier's accumulation can over-approximate).
            let mut minimal = orderings.clone();
            let mut idx = minimal.len();
            while idx > 0 {
                idx -= 1;
                if seed.contains(&minimal[idx]) {
                    continue; // caller-provided orderings stay
                }
                let mut trial = minimal.clone();
                trial.remove(idx);
                if verify_against_sg(netlist, sg, &trial).passed() {
                    minimal = trial;
                }
            }
            let report = verify_against_sg(netlist, sg, &minimal);
            return Requirements {
                orderings: minimal,
                report,
                iterations,
            };
        }
        if iterations > 32 {
            return Requirements {
                orderings,
                report,
                iterations,
            };
        }
        let mut extended = false;
        for failure in &report.failures {
            match failure {
                Failure::UnexpectedOutput {
                    net,
                    value,
                    pending_others,
                    ..
                } => {
                    // The offending transition fired too early: every
                    // other pending transition is a repair candidate —
                    // "disallow the erroneous firing through relative
                    // timing in the verifier" (§5).
                    for &before in pending_others {
                        if before.0 == *net {
                            continue;
                        }
                        let ordering = NetOrdering::new(before, (*net, *value));
                        if !orderings.contains(&ordering) {
                            orderings.push(ordering);
                            extended = true;
                        }
                    }
                }
                Failure::SemiModularity {
                    gate, withdrawn_by, ..
                } => {
                    let out = netlist.gate(*gate).output;
                    for value in [true, false] {
                        let ordering = NetOrdering::new((out, value), *withdrawn_by);
                        if !orderings.contains(&ordering) {
                            orderings.push(ordering);
                            extended = true;
                            break;
                        }
                    }
                }
            }
        }
        if !extended {
            // Nothing left to propose: not timing-fixable.
            let report = verify_against_sg(netlist, sg, &orderings);
            return Requirements {
                orderings,
                report,
                iterations,
            };
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rt_netlist::cells::majority_celement;
    use rt_stg::{explore, models};

    #[test]
    fn celement_requirements_close_the_loop() {
        let (netlist, p) = majority_celement();
        let sg = explore(&models::celement_stg()).unwrap();
        let req = extract_requirements(&netlist, &sg, &[]);
        assert!(req.satisfied(), "loop must converge: {:?}", req.orderings);
        assert!(!req.orderings.is_empty());
        // The extracted set speaks about the internal products.
        let names: Vec<String> = req.orderings.iter().map(|o| o.describe(&netlist)).collect();
        assert!(
            names
                .iter()
                .any(|n| n.contains("ab") || n.contains("ac") || n.contains("bc")),
            "{names:?}"
        );
        let _ = p;
    }

    #[test]
    fn si_circuit_needs_no_requirements() {
        let (netlist, _) = rt_netlist::fifo::si_fifo();
        let sg = explore(&models::fifo_stg_csc()).unwrap();
        let req = extract_requirements(&netlist, &sg, &[]);
        assert!(req.satisfied());
        assert!(req.orderings.is_empty());
        assert_eq!(req.iterations, 1);
    }

    #[test]
    fn seeded_orderings_are_kept() {
        let (netlist, p) = majority_celement();
        let sg = explore(&models::celement_stg()).unwrap();
        let seed = [NetOrdering::new((p.ac, true), (p.ab, false))];
        let req = extract_requirements(&netlist, &sg, &seed);
        assert!(req.orderings.contains(&seed[0]));
        assert!(req.satisfied());
    }
}
