//! The Section-4 story: one FIFO controller, four implementations —
//! speed-independent, burst-mode, relative-timing and pulse-mode —
//! simulated side by side (Table 2's shape on your terminal).
//!
//! ```text
//! cargo run --example fifo_evolution
//! ```

use rt_cad::netlist::fifo;
use rt_cad::sim::agent::{run_with_agents, FourPhaseConsumer, PulseSource, RingProducer};
use rt_cad::sim::measure::EdgeRecorder;
use rt_cad::sim::Simulator;

fn main() {
    println!("circuit     cycle ps   energy/cycle fJ   transistors   hazards");
    type Build = fn() -> (rt_cad::netlist::Netlist, fifo::FifoPorts);
    for (name, build) in [
        ("SI    ", fifo::si_fifo as Build),
        ("RT-BM ", fifo::bm_fifo as Build),
        ("RT    ", fifo::rt_fifo as Build),
    ] {
        let (netlist, ports) = build();
        let mut sim = Simulator::new(&netlist);
        sim.settle_initial(16);
        let mut producer = RingProducer::new(ports.li, ports.lo, ports.ri, 40);
        producer.max_cycles = Some(40);
        let mut consumer = FourPhaseConsumer::new(ports.ro, ports.ri, 40);
        let mut recorder = EdgeRecorder::new(ports.li);
        run_with_agents(
            &mut sim,
            &mut [&mut producer, &mut consumer, &mut recorder],
            100_000_000,
        );
        let cycle = recorder.cycle_stats().map(|s| s.mean_ps).unwrap_or(0);
        println!(
            "{name}    {:>8}   {:>15}   {:>11}   {:>7}",
            cycle,
            sim.energy_fj() / producer.cycles().max(1),
            netlist.transistor_count(),
            sim.hazards().len()
        );
    }
    // The pulse circuit speaks a different protocol.
    let (netlist, ports) = fifo::pulse_fifo();
    let mut sim = Simulator::new(&netlist);
    sim.settle_initial(16);
    let mut source = PulseSource {
        net: ports.li,
        period_ps: 600,
        width_ps: 120,
        count: 40,
        offset_ps: 200,
    };
    let mut recorder = EdgeRecorder::new(ports.ro);
    run_with_agents(&mut sim, &mut [&mut source, &mut recorder], 100_000_000);
    println!(
        "Pulse     {:>8}   {:>15}   {:>11}   {:>7}   ({} pulses echoed)",
        600,
        sim.energy_fj() / 40,
        netlist.transistor_count(),
        sim.hazards().len(),
        recorder.rises().len()
    );
}
