//! Token circulation in a gate-level pipeline, with a VCD waveform dump
//! you can open in GTKWave — the RAPPID tag torus in miniature.
//!
//! ```text
//! cargo run --example pipeline_ring
//! gtkwave /tmp/pipeline_ring.vcd   # optional
//! ```

use rt_cad::netlist::fifo::rt_fifo_chain;
use rt_cad::rappid::TagRing;
use rt_cad::sim::agent::{run_with_agents, FourPhaseConsumer, RingProducer};
use rt_cad::sim::vcd::to_vcd;
use rt_cad::sim::Simulator;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A 4-stage open pipeline driven by handshake agents.
    let (chain, ports, stages) = rt_fifo_chain(4);
    let mut sim = Simulator::new(&chain);
    sim.settle_initial(16);
    sim.enable_trace();
    let mut producer = RingProducer::new(ports.li, ports.lo, ports.ri, 80);
    producer.max_cycles = Some(10);
    let mut consumer = FourPhaseConsumer::new(ports.ro, ports.ri, 80);
    run_with_agents(&mut sim, &mut [&mut producer, &mut consumer], 10_000_000);
    println!(
        "open chain: {} tokens through {} stages, {} fJ, {} hazards",
        producer.cycles(),
        stages.len(),
        sim.energy_fj(),
        sim.hazards().len()
    );
    let vcd = to_vcd(&sim, &chain).expect("tracing enabled");
    std::fs::write("/tmp/pipeline_ring.vcd", &vcd)?;
    println!("waveforms: /tmp/pipeline_ring.vcd ({} bytes)", vcd.len());

    // The closed tag ring: one token, sixteen columns, self-timed laps.
    let ring = TagRing::new(16);
    if let Some((stats, hop)) = ring.measure(100_000) {
        println!(
            "\ntag ring: {} laps, mean lap {} ps, mean hop {} ps (~{:.1} GHz hop rate)",
            stats.periods,
            stats.mean_ps,
            hop,
            1_000.0 / hop as f64
        );
    }
    Ok(())
}
