//! Quickstart: specify a controller, synthesize it speed-independently,
//! then again with relative timing, and verify both.
//!
//! ```text
//! cargo run --example quickstart
//! ```

use rt_cad::rt::{RtAssumption, RtSynthesisFlow};
use rt_cad::stg::{explore, models, Edge};
use rt_cad::verify::verify_against_sg;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. The specification: the paper's Figure-3 FIFO controller.
    let spec = models::fifo_stg();
    let sg = explore(&spec)?;
    println!(
        "spec `{}`: {} signals, {} states, {} CSC conflicts",
        spec.name(),
        spec.signal_count(),
        sg.state_count(),
        sg.csc_conflicts().len()
    );

    // 2. Speed-independent synthesis: a state signal gets inserted, the
    //    result is correct under any gate delays.
    let si = RtSynthesisFlow::speed_independent().run(&spec, &[])?;
    println!(
        "\nspeed-independent: {} transistors, state signals {:?}, {} constraints",
        si.synthesis.netlist.transistor_count(),
        si.inserted_signals,
        si.constraints.len()
    );
    print!("{}", si.synthesis.equations_text(&si.lazy_sg));

    // 3. Relative-timing synthesis: tell the flow what the environment
    //    guarantees (the FIFO-ring argument of Figure 6) and let it
    //    prune, simplify and back-annotate.
    let s = |n: &str| spec.signal_by_name(n).expect("interface signal");
    let user = vec![
        RtAssumption::user(s("ri"), Edge::Fall, s("li"), Edge::Rise),
        RtAssumption::user(s("li"), Edge::Fall, s("ri"), Edge::Fall),
    ];
    let rt = RtSynthesisFlow::new().run(&spec, &user)?;
    println!(
        "\nrelative-timing: {} transistors, state signals {:?}",
        rt.synthesis.netlist.transistor_count(),
        rt.inserted_signals
    );
    print!("{}", rt.synthesis.equations_text(&rt.lazy_sg));
    println!("required timing constraints:");
    for c in &rt.constraints {
        println!("  {}", c.describe(&rt.lazy_sg));
    }

    // 4. Verify the RT netlist against its lazy specification.
    let report = verify_against_sg(&rt.synthesis.netlist, &rt.lazy_sg, &[]);
    println!(
        "\nconformance on the lazy state graph: {}",
        if report.passed() { "PASS" } else { "FAIL" }
    );
    Ok(())
}
