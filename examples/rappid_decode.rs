//! Feed real x86 bytes through the RAPPID model and watch the three
//! self-timed cycles do their work.
//!
//! ```text
//! cargo run --example rappid_decode
//! ```

use rt_cad::rappid::isa::segment_stream;
use rt_cad::rappid::{workload, ClockedConfig, ClockedDecoder, Rappid, RappidConfig};

fn main() {
    // A hand-written snippet: push ebp; mov ebp,esp; mov eax,[ebp+8];
    // add eax,1; pop ebp; ret — classic prologue/epilogue.
    let snippet: &[u8] = &[
        0x55, // push ebp
        0x89, 0xE5, // mov ebp, esp
        0x8B, 0x45, 0x08, // mov eax, [ebp+8]
        0x83, 0xC0, 0x01, // add eax, 1
        0x5D, // pop ebp
        0xC3, // ret
    ];
    println!("hand snippet lengths:");
    let mut pos = 0;
    for d in segment_stream(snippet) {
        println!(
            "  offset {:>2}: {} byte(s){}{}",
            pos,
            d.total,
            if d.has_modrm { ", modrm" } else { "" },
            if d.common { ", common" } else { "" }
        );
        pos += usize::from(d.total);
    }

    // Now a full synthetic workload through both microarchitectures.
    let lines = workload::typical_mix(256, 2026);
    let stats = workload::stream_stats(&lines);
    println!(
        "\nworkload: {} lines, {} instructions, mean length {:.2} bytes",
        lines.len(),
        stats.instructions,
        stats.mean_length
    );
    let rappid = Rappid::new(RappidConfig::default()).run(&lines);
    let clocked = ClockedDecoder::new(ClockedConfig::default()).run(&lines);
    println!(
        "RAPPID : {:.2} inst/ns ({:.0} Mlines/s), tag period {} ps",
        rappid.instructions_per_ns(),
        rappid.mlines_per_s(),
        rappid.tag_period_ps
    );
    println!(
        "clocked: {:.2} inst/ns at 400 MHz — the asynchronous design wins {:.1}x",
        clocked.instructions_per_ns(),
        rappid.instructions_per_ns() / clocked.instructions_per_ns()
    );
}
