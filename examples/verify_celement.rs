//! The Section-5 verification walkthrough as a runnable example: a
//! decomposed C-element fails speed-independence, relative timing
//! rescues it, and path constraints make the requirement physical.
//!
//! ```text
//! cargo run --example verify_celement
//! ```

use rt_cad::netlist::cells::majority_celement;
use rt_cad::stg::models::celement_stg;
use rt_cad::verify::{extract_requirements, path_constraints, verify};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let (netlist, _) = majority_celement();
    let spec = celement_stg();

    let report = verify(&netlist, &spec, &[])?;
    println!(
        "unbounded delays: {} failures — the AND/OR decomposition is not SI",
        report.failures.len()
    );

    let sg = rt_cad::stg::explore(&spec)?;
    let requirements = extract_requirements(&netlist, &sg, &[]);
    println!("\nrelative-timing requirements that make it verify:");
    for o in &requirements.orderings {
        println!("  {}", o.describe(&netlist));
    }
    assert!(requirements.satisfied());

    println!("\nas path constraints (delay-model margins):");
    for c in path_constraints(&netlist, &spec, &requirements.orderings) {
        println!("  {}", c.describe(&netlist));
    }
    Ok(())
}
