//! # rt-cad — Relative-Timing CAD for High-Performance Asynchronous Circuits
//!
//! Umbrella crate of the `rt-cad` workspace, a from-scratch Rust
//! reproduction of Stevens et al., *"CAD Directions for High Performance
//! Asynchronous Circuits"* (DAC 1999): the Relative Timing synthesis
//! methodology, the FIFO case study of Figures 3–7 / Table 2, the RAPPID
//! instruction-length decoder of Figure 1 / Table 1, and the RT
//! verification flow of Section 5.
//!
//! This crate re-exports every subsystem under one roof:
//!
//! * [`stg`] — Signal Transition Graphs, reachability, state graphs,
//!   and the [`stg::engine::ReachEngine`] façade (explicit + persistent
//!   symbolic backends) the whole synthesis pipeline queries
//! * [`boolean`] — cube/cover algebra, espresso-lite minimizer, BDDs
//! * [`netlist`] — gate library and gate-level netlists
//! * [`sim`] — event-driven timing/energy simulation
//! * [`synth`] — speed-independent logic synthesis
//! * [`rt`] — relative-timing synthesis (the paper's contribution)
//! * [`verify`] — conformance and RT verification
//! * [`dft`] — stuck-at fault simulation and testability
//! * [`rappid`] — the RAPPID microarchitecture and its clocked baseline
//!
//! ## Quickstart
//!
//! ```
//! use rt_cad::stg::{models, explore};
//!
//! # fn main() -> Result<(), rt_cad::stg::StgError> {
//! let spec = models::fifo_stg();        // Figure 3
//! let sg = explore(&spec)?;             // reachability analysis
//! assert!(sg.is_strongly_connected());
//! # Ok(())
//! # }
//! ```

pub use rt_boolean as boolean;
pub use rt_core as rt;
pub use rt_dft as dft;
pub use rt_netlist as netlist;
pub use rt_rappid as rappid;
pub use rt_sim as sim;
pub use rt_stg as stg;
pub use rt_synth as synth;
pub use rt_verify as verify;
