//! The classic-benchmark corpus through the full CAD flow: parse,
//! explore, resolve CSC, synthesize, verify.

use rt_cad::rt::RtSynthesisFlow;
use rt_cad::stg::{corpus, explore};
use rt_cad::synth::{resolve_csc, synthesize};
use rt_cad::verify::verify_against_sg;

#[test]
fn xyz_synthesizes_and_conforms_directly() {
    let stg = corpus::parse(corpus::XYZ_G).expect("parses");
    let sg = explore(&stg).expect("explores");
    let result = synthesize(&sg, "xyz").expect("CSC-free spec synthesizes");
    result.netlist.validate().expect("structurally sound");
    let report = verify_against_sg(&result.netlist, &sg, &[]);
    assert!(report.passed(), "{:?}", report.failures);
}

#[test]
fn vme_read_flow_inserts_a_state_signal_and_conforms() {
    let stg = corpus::parse(corpus::VME_READ_G).expect("parses");
    let resolution = resolve_csc(&stg).expect("encodable");
    assert!(
        !resolution.inserted.is_empty(),
        "the canonical CSC insertion"
    );
    let sg = resolution
        .sg
        .as_ref()
        .expect("the explicit resolution path carries its graph");
    assert!(sg.csc_conflicts().is_empty());
    let result = synthesize(sg, "vme_read").expect("synthesizes");
    result.netlist.validate().expect("structurally sound");
    let report = verify_against_sg(&result.netlist, sg, &[]);
    assert!(report.passed(), "{:?}", report.failures);
}

#[test]
fn pipeline_stage_flow_end_to_end() {
    let stg = corpus::parse(corpus::PIPELINE_STAGE_G).expect("parses");
    let report = RtSynthesisFlow::speed_independent()
        .run(&stg, &[])
        .expect("SI flow");
    assert!(!report.inserted_signals.is_empty());
    let verdict = verify_against_sg(&report.synthesis.netlist, &report.lazy_sg, &[]);
    assert!(verdict.passed(), "{:?}", verdict.failures);
}

#[test]
fn rt_flow_shrinks_vme_read_too() {
    // Relative timing generalizes beyond the FIFO: on the VME controller
    // the automatic flow must do at least as well as the SI baseline.
    let stg = corpus::parse(corpus::VME_READ_G).expect("parses");
    let si = RtSynthesisFlow::speed_independent()
        .run(&stg, &[])
        .expect("SI flow");
    let rt = RtSynthesisFlow::new().run(&stg, &[]).expect("RT flow");
    assert!(
        rt.synthesis.literal_count <= si.synthesis.literal_count,
        "RT {} vs SI {} literals",
        rt.synthesis.literal_count,
        si.synthesis.literal_count
    );
}

#[test]
fn boolean_arbiter_violates_mutual_exclusion_under_ties() {
    // Boolean logic cannot arbitrate: under *interleaving* semantics the
    // synthesized cross-coupled circuit conforms (one grant always
    // "wins" in any explored order), but with simultaneous requests in
    // real time both set stacks conduct — the event simulator shows both
    // grants high at once. This is why arbitration needs a
    // mutual-exclusion primitive, not gates.
    use rt_cad::sim::Simulator;

    let stg = corpus::parse(corpus::ARBITER2_G).expect("parses");
    let sg = explore(&stg).expect("explores");
    let result = synthesize(&sg, "arbiter").expect("covers derive");
    result.netlist.validate().expect("structurally sound");
    // Interleaving conformance passes (no single trace is wrong)...
    let report = verify_against_sg(&result.netlist, &sg, &[]);
    assert!(report.passed());
    // ...but a timed tie breaks mutual exclusion.
    let netlist = &result.netlist;
    let r1 = netlist.net_by_name("r1").expect("r1");
    let r2 = netlist.net_by_name("r2").expect("r2");
    let g1 = netlist.net_by_name("g1").expect("g1");
    let g2 = netlist.net_by_name("g2").expect("g2");
    let mut sim = Simulator::new(netlist);
    sim.settle_initial(16);
    sim.enable_trace();
    sim.schedule(r1, true, 100);
    sim.schedule(r2, true, 100); // exact tie
    sim.run_until(100_000);
    let mut both_high_seen = sim.value(g1) && sim.value(g2);
    // Replay the trace to catch a transient overlap as well.
    let mut v1 = false;
    let mut v2 = false;
    for &(_, net, value) in sim.trace().expect("traced") {
        if net == g1 {
            v1 = value;
        }
        if net == g2 {
            v2 = value;
        }
        both_high_seen |= v1 && v2;
    }
    assert!(
        both_high_seen,
        "a timed tie must expose the mutual-exclusion violation"
    );
}
