//! End-to-end integration: the Figure-2 flow on the Figure-3 FIFO, from
//! specification to verified netlists, across all four implementation
//! styles (Figures 4–7).

use rt_cad::netlist::fifo;
use rt_cad::rt::{pulse_constraints, RtAssumption, RtSynthesisFlow};
use rt_cad::stg::{explore, models, Edge};
use rt_cad::verify::{extract_requirements, verify, verify_against_sg};

fn ring_assumptions(spec: &rt_cad::stg::Stg) -> Vec<RtAssumption> {
    let s = |n: &str| spec.signal_by_name(n).expect("interface signal");
    vec![
        RtAssumption::user(s("ri"), Edge::Fall, s("li"), Edge::Rise),
        RtAssumption::user(s("li"), Edge::Fall, s("ri"), Edge::Fall),
    ]
}

#[test]
fn specification_has_the_paper_structure() {
    let spec = models::fifo_stg();
    let sg = explore(&spec).expect("fifo explores");
    assert_eq!(spec.signal_count(), 4, "li, lo, ro, ri");
    assert!(sg.is_strongly_connected());
    assert!(
        !sg.csc_conflicts().is_empty(),
        "the FIFO needs a state signal — the premise of Figures 4-5"
    );
}

#[test]
fn si_flow_produces_a_conforming_circuit_without_constraints() {
    let spec = models::fifo_stg();
    let report = RtSynthesisFlow::speed_independent()
        .run(&spec, &[])
        .expect("SI flow");
    assert!(!report.inserted_signals.is_empty());
    assert!(report.constraints.is_empty());
    // The synthesized netlist conforms to the encoded specification
    // (its own lazy graph, which equals the full graph here).
    let verdict = verify_against_sg(&report.synthesis.netlist, &report.lazy_sg, &[]);
    assert!(verdict.passed(), "{:?}", verdict.failures);
}

#[test]
fn rt_flow_eliminates_the_state_signal_and_conforms() {
    let spec = models::fifo_stg();
    let report = RtSynthesisFlow::new()
        .run(&spec, &ring_assumptions(&spec))
        .expect("RT flow");
    assert!(report.inserted_signals.is_empty(), "{}", report.log_text());
    assert!(!report.constraints.is_empty());
    assert!(report.lazy_states < report.initial_states);
    let verdict = verify_against_sg(&report.synthesis.netlist, &report.lazy_sg, &[]);
    assert!(verdict.passed(), "{:?}", verdict.failures);
}

#[test]
fn rt_is_at_least_forty_percent_smaller_than_si() {
    let spec = models::fifo_stg();
    let si = RtSynthesisFlow::speed_independent()
        .run(&spec, &[])
        .expect("SI flow");
    let rt = RtSynthesisFlow::new()
        .run(&spec, &ring_assumptions(&spec))
        .expect("RT flow");
    let si_area = si.synthesis.netlist.transistor_count();
    let rt_area = rt.synthesis.netlist.transistor_count();
    assert!(
        rt_area * 10 <= si_area * 6,
        "paper: 39 -> 20 transistors; ours: {si_area} -> {rt_area}"
    );
}

#[test]
fn hand_si_netlist_conforms_to_the_csc_spec() {
    let (netlist, _) = fifo::si_fifo();
    let report = verify(&netlist, &models::fifo_stg_csc(), &[]).expect("spec explores");
    assert!(report.passed(), "{:?}", report.failures);
    // And it needs no RT requirements.
    let sg = explore(&models::fifo_stg_csc()).expect("spec explores");
    let req = extract_requirements(&netlist, &sg, &[]);
    assert!(req.orderings.is_empty());
}

#[test]
fn standard_c_variant_also_conforms() {
    // Same behaviour, different architecture: the symmetric-C mapping of
    // the SI equations conforms with no constraints, just like the gC one.
    let (netlist, _) = fifo::si_fifo_standard_c();
    let report = verify(&netlist, &models::fifo_stg_csc(), &[]).expect("spec explores");
    assert!(
        report.passed(),
        "{:?}",
        report
            .failures
            .iter()
            .map(|f| f.describe(&netlist))
            .collect::<Vec<_>>()
    );
}

#[test]
fn pulse_constraints_bound_the_protocol() {
    let constraints = pulse_constraints();
    assert!(constraints.min_width_ps < constraints.max_width_ps);
    assert!(constraints.min_separation_ps > constraints.min_width_ps);
    // A legal train passes the checker; an illegal one is rejected.
    let period = constraints.min_separation_ps + 100;
    let width = (constraints.min_width_ps + constraints.max_width_ps) / 2;
    let legal: Vec<(u64, u64)> = (0..5).map(|k| (k * period, width)).collect();
    assert!(constraints.check(&legal).is_ok());
    let illegal = [(0, width), (constraints.min_separation_ps / 2, width)];
    assert!(constraints.check(&illegal).is_err());
}

#[test]
fn g_format_round_trip_preserves_behaviour() {
    for stg in [
        models::fifo_stg(),
        models::fifo_stg_csc(),
        models::celement_stg(),
    ] {
        let text = rt_cad::stg::parse::write_g(&stg);
        let parsed = rt_cad::stg::parse::parse_g(&text).expect("round trip parses");
        let a = explore(&stg).expect("original explores");
        let b = explore(&parsed).expect("round trip explores");
        assert_eq!(a.state_count(), b.state_count());
        assert_eq!(a.arc_count(), b.arc_count());
        assert_eq!(a.csc_conflicts().len(), b.csc_conflicts().len());
    }
}
