//! End-to-end property tests: for randomly generated live
//! specifications, the synthesis flow must produce netlists that the
//! conformance checker accepts — the strongest invariant the toolchain
//! offers.

use proptest::prelude::*;
use rt_cad::rt::RtSynthesisFlow;
use rt_cad::stg::{explore, Edge, SignalKind, Stg};
use rt_cad::synth::synthesize;
use rt_cad::verify::verify_against_sg;

/// A random "token ring" STG over `n` signals with a configurable mix of
/// input/output roles (signal 0 is always an input so the environment
/// drives the cycle; at least one output exists so there is something to
/// synthesize).
fn ring_spec(n: usize, roles: &[bool], marked_at: usize) -> Stg {
    let mut stg = Stg::new(format!("ring{n}"));
    let signals: Vec<_> = (0..n)
        .map(|i| {
            let kind = if i == 0 || roles.get(i).copied().unwrap_or(false) {
                SignalKind::Input
            } else {
                SignalKind::Output
            };
            stg.add_signal(format!("s{i}"), kind).expect("fresh")
        })
        .collect();
    let mut transitions = Vec::new();
    for &s in &signals {
        transitions.push(stg.transition_for(s, Edge::Rise));
    }
    for &s in &signals {
        transitions.push(stg.transition_for(s, Edge::Fall));
    }
    for i in 0..transitions.len() {
        let from = transitions[i];
        let to = transitions[(i + 1) % transitions.len()];
        if i == marked_at % transitions.len() {
            stg.marked_arc(from, to);
        } else {
            stg.arc(from, to);
        }
    }
    stg
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn synthesized_rings_conform(
        n in 2usize..6,
        roles in prop::collection::vec(prop::bool::ANY, 6),
        marked in 0usize..12,
    ) {
        let stg = ring_spec(n, &roles, marked);
        let sg = explore(&stg).expect("rings are live");
        prop_assume!(!sg.implemented_signals().is_empty());
        // Sequential rings are CSC-free (distinct codes around the cycle).
        prop_assert!(sg.csc_conflicts().is_empty());
        let result = synthesize(&sg, "ring").expect("synthesizable");
        result.netlist.validate().expect("structurally sound");
        let report = verify_against_sg(&result.netlist, &sg, &[]);
        prop_assert!(
            report.passed(),
            "conformance failed: {:?}",
            report
                .failures
                .iter()
                .map(|f| f.describe(&result.netlist))
                .collect::<Vec<_>>()
        );
    }

    #[test]
    fn si_flow_conforms_on_rings(
        n in 2usize..5,
        marked in 0usize..10,
    ) {
        let stg = ring_spec(n, &[], marked);
        let report = RtSynthesisFlow::speed_independent()
            .run(&stg, &[])
            .expect("flow runs");
        let verdict = verify_against_sg(&report.synthesis.netlist, &report.lazy_sg, &[]);
        prop_assert!(verdict.passed());
        prop_assert!(report.constraints.is_empty(), "SI needs no constraints");
    }

    #[test]
    fn rt_flow_never_exceeds_si_cost(
        n in 2usize..5,
        marked in 0usize..10,
    ) {
        let stg = ring_spec(n, &[], marked);
        let si = RtSynthesisFlow::speed_independent().run(&stg, &[]).expect("SI");
        let rt = RtSynthesisFlow::new().run(&stg, &[]).expect("RT");
        prop_assert!(
            rt.synthesis.literal_count <= si.synthesis.literal_count,
            "RT {} vs SI {}",
            rt.synthesis.literal_count,
            si.synthesis.literal_count
        );
    }
}
