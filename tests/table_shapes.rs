//! Integration checks that the two headline tables keep their published
//! *shape* — who wins, by roughly what factor — end to end.

use rt_cad::dft::{fault_coverage_four_phase, fault_coverage_pulse};
use rt_cad::netlist::fifo;
use rt_cad::rappid::{workload, ClockedConfig, ClockedDecoder, Rappid, RappidConfig};
use rt_cad::sim::agent::{run_with_agents, FourPhaseConsumer, RingProducer};
use rt_cad::sim::measure::EdgeRecorder;
use rt_cad::sim::Simulator;

fn mean_cycle_ps(netlist: &rt_cad::netlist::Netlist, ports: fifo::FifoPorts) -> u64 {
    let mut sim = Simulator::new(netlist);
    sim.settle_initial(16);
    let mut producer = RingProducer::new(ports.li, ports.lo, ports.ri, 40);
    producer.max_cycles = Some(30);
    let mut consumer = FourPhaseConsumer::new(ports.ro, ports.ri, 40);
    let mut recorder = EdgeRecorder::new(ports.li);
    run_with_agents(
        &mut sim,
        &mut [&mut producer, &mut consumer, &mut recorder],
        100_000_000,
    );
    assert!(sim.hazards().is_empty(), "no fights in legal operation");
    recorder.cycle_stats().expect("cycles ran").mean_ps
}

#[test]
fn table2_shape_holds_end_to_end() {
    let (si, si_ports) = fifo::si_fifo();
    let (bm, bm_ports) = fifo::bm_fifo();
    let (rt, rt_ports) = fifo::rt_fifo();
    let (pulse, pulse_ports) = fifo::pulse_fifo();

    // Delay ordering (Table 2 column 1-2).
    let si_cycle = mean_cycle_ps(&si, si_ports);
    let bm_cycle = mean_cycle_ps(&bm, bm_ports);
    let rt_cycle = mean_cycle_ps(&rt, rt_ports);
    assert!(si_cycle > bm_cycle, "SI {si_cycle} vs BM {bm_cycle}");
    assert!(bm_cycle > rt_cycle, "BM {bm_cycle} vs RT {rt_cycle}");
    assert!(
        si_cycle as f64 / rt_cycle as f64 > 2.0,
        "the RT transformation buys >2x in cycle time"
    );

    // Area ordering (column 4).
    assert!(si.transistor_count() >= 2 * rt.transistor_count());
    assert!(bm.transistor_count() >= 2 * rt.transistor_count());
    assert!(pulse.transistor_count() < rt.transistor_count());

    // Testability (column 5): RT and pulse fully testable.
    assert!(fault_coverage_four_phase(&rt, rt_ports, 6).coverage_pct() >= 99.9);
    assert!(fault_coverage_pulse(&pulse, pulse_ports, 6).coverage_pct() >= 99.9);
}

#[test]
fn table1_shape_holds_end_to_end() {
    let lines = workload::typical_mix(384, 7);
    let rappid = Rappid::new(RappidConfig::default()).run(&lines);
    let clocked = ClockedDecoder::new(ClockedConfig::default()).run(&lines);

    let throughput = rappid.instructions_per_ns() / clocked.instructions_per_ns();
    assert!(
        (2.0..=4.0).contains(&throughput),
        "paper 3x, got {throughput:.2}"
    );

    let latency = clocked.latency_ps as f64 / rappid.first_issue_latency_ps as f64;
    assert!(latency > 1.4, "paper 2x, got {latency:.2}");

    let power = clocked.power_fj_per_ns() / rappid.power_fj_per_ns();
    assert!((1.4..=3.0).contains(&power), "paper 2x, got {power:.2}");

    let area = rappid.area_transistors as f64 / clocked.area_transistors as f64;
    assert!((1.05..=1.4).contains(&area), "paper +22%, got {area:.2}");

    // The paper's performance band: 2.5-4.5 instructions/ns.
    let gips = rappid.instructions_per_ns();
    assert!((2.0..=4.5).contains(&gips), "got {gips:.2}");
}

#[test]
fn average_case_beats_worst_case_only_for_the_async_design() {
    // The §2.2 argument: RAPPID speeds up on easy (long-instruction)
    // lines; the clocked design cannot.
    let short = workload::short_heavy(256, 3);
    let long = workload::long_heavy(256, 3);

    let rappid = Rappid::new(RappidConfig::default());
    let r_short = rappid.run(&short);
    let r_long = rappid.run(&long);
    assert!(
        r_long.mlines_per_s() > r_short.mlines_per_s() * 1.2,
        "async: long-instruction lines consumed faster ({:.0} vs {:.0})",
        r_long.mlines_per_s(),
        r_short.mlines_per_s()
    );

    let clocked = ClockedDecoder::new(ClockedConfig::default());
    let c_short = clocked.run(&short);
    let c_long = clocked.run(&long);
    // Clocked per-instruction time is essentially mix-independent.
    let per_short = c_short.elapsed_ps as f64 / c_short.instructions as f64;
    let per_long = c_long.elapsed_ps as f64 / c_long.instructions as f64;
    assert!(
        (per_long / per_short) > 0.75 && (per_long / per_short) < 1.35,
        "clocked: {per_short:.0} vs {per_long:.0} ps/inst"
    );
}
